(** Log-space probability arithmetic for the security calculations of
    Section 5.

    Committee sizing needs tail probabilities as small as 2^-20 of a
    hypergeometric distribution with populations of a few thousand;
    computing binomial coefficients directly overflows, so everything is
    done with log-gamma. *)

val log_gamma : float -> float
(** Natural log of the gamma function (Lanczos approximation, accurate to
    ~1e-10 for arguments >= 0.5, reflected below). *)

val log_choose : int -> int -> float
(** [log_choose n k] = ln (n choose k); [neg_infinity] when the coefficient
    is zero ([k < 0] or [k > n]). *)

val log_add : float -> float -> float
(** ln(e^a + e^b) without overflow. *)

val log_sum : float list -> float

val hypergeom_log_pmf : total:int -> bad:int -> draws:int -> k:int -> float
(** ln Pr[X = k] where X counts bad items among [draws] samples without
    replacement from a population of [total] items of which [bad] are bad. *)

val hypergeom_tail : total:int -> bad:int -> draws:int -> at_least:int -> float
(** Pr[X >= at_least] — Equation 1 of the paper: the probability that a
    committee of [draws] nodes sampled from [total] nodes ([bad] Byzantine)
    contains at least [at_least] Byzantine members. *)

val hypergeom_log_tail : total:int -> bad:int -> draws:int -> at_least:int -> float
(** ln of the same tail, usable below double underflow. *)

val binomial_tail : n:int -> p:float -> at_least:int -> float
(** Pr[X >= at_least] for X ~ Binomial(n, p); the with-replacement limit
    used for sanity cross-checks. *)
