let fnum x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 100.0 then Printf.sprintf "%.1f" x
  else if Float.abs x >= 1.0 then Printf.sprintf "%.2f" x
  else if Float.abs x >= 0.001 then Printf.sprintf "%.4f" x
  else if x = 0.0 then "0"
  else Printf.sprintf "%.3e" x

let render ~header ~rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) 0 all in
  let width = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> width.(i) <- Stdlib.max width.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 256 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < ncols - 1 then Buffer.add_string buf (String.make (width.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit header;
  let rule = List.mapi (fun i _ -> String.make width.(i) '-') header in
  emit rule;
  List.iter emit rows;
  Buffer.contents buf

let print ~header ~rows = print_string (render ~header ~rows)

let series ~title ~x_label ~columns ~rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ title ^ " ==\n");
  let header = x_label :: columns in
  let body = List.map (fun (x, ys) -> fnum x :: List.map fnum ys) rows in
  Buffer.add_string buf (render ~header ~rows:body);
  Buffer.contents buf

let print_series ~title ~x_label ~columns ~rows =
  print_string (series ~title ~x_label ~columns ~rows)
