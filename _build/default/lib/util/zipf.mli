(** Zipfian key sampler.

    Used by the workload drivers to skew key popularity; Figure 13 (right)
    sweeps the Zipf coefficient from 0 to 1.99 and reports the cross-shard
    abort rate. *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a sampler over keys [0 .. n-1] with skew
    [theta >= 0].  [theta = 0] is uniform.  Precomputes the CDF in O(n). *)

val n : t -> int

val theta : t -> float

val sample : t -> Rng.t -> int
(** Draw a key; O(log n) by binary search on the CDF. *)

val pmf : t -> int -> float
(** Probability of key [i] (rank [i+1]). *)
