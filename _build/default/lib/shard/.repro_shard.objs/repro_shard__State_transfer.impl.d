lib/shard/state_transfer.ml: List Repro_crypto Repro_ledger Repro_sim Sha256 State String
