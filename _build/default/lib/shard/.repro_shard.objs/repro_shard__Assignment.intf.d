lib/shard/assignment.mli:
