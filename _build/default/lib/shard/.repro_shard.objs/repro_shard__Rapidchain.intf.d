lib/shard/rapidchain.mli: Repro_ledger
