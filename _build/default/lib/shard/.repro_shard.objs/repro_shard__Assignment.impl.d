lib/shard/assignment.ml: Array Hashtbl List Option Printf Repro_util Rng
