lib/shard/sizing.ml: Array Float Logspace Repro_util Stdlib
