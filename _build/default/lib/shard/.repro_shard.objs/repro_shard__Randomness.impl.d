lib/shard/randomness.ml: Array Cost_model Engine Float Fun Hashtbl Int64 Keys List Option Repro_crypto Repro_sgx Repro_sim Repro_util Rng Stdlib Topology
