lib/shard/rapidchain.ml: Array Executor List Repro_ledger Utxo
