lib/shard/reference.mli:
