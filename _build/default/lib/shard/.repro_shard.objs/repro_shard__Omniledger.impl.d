lib/shard/omniledger.ml: Array List Locks Repro_ledger Sizing State String
