lib/shard/omniledger.mli: Repro_ledger
