lib/shard/reference.ml: Hashtbl List Option
