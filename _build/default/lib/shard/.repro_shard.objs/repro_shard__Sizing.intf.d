lib/shard/sizing.mli:
