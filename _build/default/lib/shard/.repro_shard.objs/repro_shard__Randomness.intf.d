lib/shard/randomness.mli: Repro_sim
