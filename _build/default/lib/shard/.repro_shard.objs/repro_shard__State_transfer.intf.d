lib/shard/state_transfer.mli: Repro_crypto Repro_ledger Repro_sim
