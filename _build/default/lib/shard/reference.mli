(** The reference committee's 2PC state machine (Figure 6).

    R runs this machine as a BFT-replicated chaincode: [BeginTx] starts a
    transaction with a participant counter c; each participant committee's
    quorum answer ([PrepareOK]/[PrepareNotOK]) advances it; [Committed] is
    reached when every participant voted OK, [Aborted] on the first NotOK
    (or an explicit client abort before completion).  The machine is pure
    and deterministic, so every replica of R computes identical
    transitions — the module is exactly the chaincode of Section 6.3. *)

type state = Started | Preparing of int (** remaining OK votes *) | Committed | Aborted

type event =
  | Begin of { participants : int list }  (** the tx-committees involved *)
  | Prepare_ok of { shard : int }
  | Prepare_not_ok of { shard : int }
  | Client_abort

type decision = No_change | Now_started | Now_committed | Now_aborted

type t

val create : unit -> t

val step : t -> txid:int -> event -> decision
(** Applies one event; idempotent per (txid, shard) vote (duplicate quorum
    messages from the same shard do not double-count), and votes from
    shards that are not participants of the transaction are rejected.
    Events for unknown or finished transactions return [No_change] (votes
    arriving after the decision are ignored, as the blockchain already
    records the outcome). *)

val state_of : t -> txid:int -> state option

val stats : t -> int * int * int
(** (in-flight, committed, aborted). *)
