(** Committee-size security calculations (Sections 5.2, 5.3, Appendix B).

    Equation 1: sampling a committee of [n] from [total] nodes of which a
    fraction [s] is Byzantine is a hypergeometric draw; the committee is
    faulty when it contains more than its tolerance [f].  Equation 2 bounds
    the failure probability across the intermediate committees of an epoch
    transition.  Equation 3 gives the probability that a d-argument
    transaction touches x shards. *)

type rule = Pbft_third | Ahl_half
(** f = (n-1)/3 for PBFT committees, f = (n-1)/2 for AHL+ committees. *)

val tolerance : rule -> n:int -> int

val pr_faulty_committee : total:int -> byzantine:int -> n:int -> rule -> float
(** Equation 1: Pr[X > f]. *)

val log2_pr_faulty : total:int -> byzantine:int -> n:int -> rule -> float
(** log₂ of the same, usable below double precision (e.g. -40). *)

val min_committee_size :
  total:int -> fraction:float -> rule:rule -> security_bits:int -> int
(** Smallest [n] with Pr[faulty] ≤ 2^-security_bits, for an adversary
    controlling [fraction] of [total] nodes.  The paper's examples: 25%
    adversary and 2⁻²⁰ need ~600 nodes under PBFT but ~80 under AHL+. *)

val max_shards :
  total:int -> fraction:float -> rule:rule -> security_bits:int -> int * int
(** [(k, n)]: with a minimal safe committee size n, how many committees a
    network of [total] nodes can sustain (Figure 14's shard counts). *)

val pr_epoch_transition_faulty :
  total:int -> byzantine:int -> n:int -> k:int -> batch:int -> rule -> float
(** Equation 2: union bound over the n(k-1)/k · B intermediate committees
    formed while swapping [batch] nodes at a time. *)

val swap_batch_size : n:int -> int
(** The paper's B = log₂(n) (rounded up, at least 1). *)

val cross_shard_probability : shards:int -> args:int -> touches:int -> float
(** Equation 3 / Appendix B: probability a transaction with [args]
    uniformly-hashed arguments touches exactly [touches] shards. *)

val expected_cross_shard_fraction : shards:int -> args:int -> float
(** Probability the transaction is distributed (touches ≥ 2 shards). *)
