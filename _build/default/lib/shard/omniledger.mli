(** OmniLedger's client-driven atomic commit (Atomix), as the liveness
    baseline of Section 6.1 (Figure 3b).

    The *client* coordinates: it obtains lock-proofs from every input
    shard (marking the inputs spent) and then instructs the output shard
    to commit.  Safety holds for UTXO, but if the client crashes or acts
    maliciously after the locks are taken, the inputs stay locked forever
    — the indefinite-blocking problem the reference committee solves. *)

type t

type tx = {
  txid : int;
  inputs : (int * string) list;  (** (shard, key) inputs to lock *)
  output_shard : int;
  output_key : string;
}

type client_behaviour = Honest | Crash_after_locks

val create : shards:int -> t

val state_of_shard : t -> int -> Repro_ledger.State.t

val execute : t -> tx -> client_behaviour -> (unit, string) result
(** Runs the lock/unlock protocol.  [Crash_after_locks] returns
    [Error "client crashed"] with the input locks left dangling. *)

val locked_keys : t -> int -> string list
(** Keys currently lock-marked in a shard — non-empty after a malicious
    client, demonstrating indefinite blocking. *)

val committee_size_for : fraction:float -> security_bits:int -> total:int -> int
(** OmniLedger committee sizing (PBFT rule) for the Figure 11 comparison. *)
