(** Node-to-committee assignment (Section 5.1).

    Given the epoch's agreed random seed, all nodes derive the same random
    permutation of [0..N-1] and chunk it into k committees.  The module
    also plans the batched epoch transition of Section 5.3: nodes whose
    committee changes move [B] at a time, in seed-determined order, so at
    most [B] members of any committee are offline simultaneously. *)

type t = { epoch : int; committees : int array array }
(** [committees.(c)] lists the global node ids of committee [c]. *)

val derive : seed:int64 -> epoch:int -> nodes:int -> committees:int -> t
(** Deterministic in (seed, epoch): every honest node computes the same
    assignment.  Committee sizes differ by at most one. *)

val committee_of : t -> int -> int
(** Which committee a node belongs to. *)

val transitioning : from_:t -> to_:t -> int list
(** Nodes whose committee changes between epochs, in seed order (the order
    they move). *)

type step = { node : int; from_committee : int; to_committee : int }

val transition_plan : from_:t -> to_:t -> batch:int -> step list list
(** Batches of at most [batch] moves per committee wave: within one wave no
    committee loses or gains more than [batch] members. *)
