(** RapidChain's cross-shard transaction splitting (Section 6.1,
    Figure 3a) — executable, including the violations the paper
    demonstrates.

    A UTXO transaction ⟨(I₁, I₂), O⟩ with inputs in shards S₁, S₂ and
    output in S₃ is split into three single-shard sub-transactions: txa
    and txb move I₁ and I₂ into S₃ as I₁′, I₂′; txc spends them into O.
    If one leg fails the others are not rolled back — the owner is merely
    told to use the migrated coin — which breaks atomicity and isolation
    for non-UTXO (account) data, as {!account_transfer} shows. *)

type t

val create : shards:int -> t

val utxo_of_shard : t -> int -> Repro_ledger.Utxo.t

val mint : t -> shard:int -> owner:string -> amount:int -> Repro_ledger.Utxo.coin

type split_outcome = {
  committed : bool;              (** did the final sub-transaction run? *)
  migrated_leftovers : (int * Repro_ledger.Utxo.coin) list;
      (** coins moved to the output shard by successful legs of a failed
          transaction — the "use I′ instead" consolation *)
}

val cross_shard_transfer :
  t ->
  inputs:(int * Repro_ledger.Utxo.coin_id) list ->
  output_shard:int ->
  owner:string ->
  split_outcome
(** Execute the split protocol; legs run independently and are not rolled
    back on sibling failure. *)

(** Account-model demonstration (Figure 4): applying the same splitting to
    ⟨acc1 + acc3⟩ → ⟨acc2⟩ debits acc1 even when acc3's debit fails. *)
val account_transfer :
  Repro_ledger.State.t array ->
  debits:(int * string * int) list ->
  credit:int * string * int ->
  [ `Committed | `Partial of string list ]
(** [`Partial dangling] lists accounts whose debit succeeded while a
    sibling failed — money already gone, not rolled back. *)
