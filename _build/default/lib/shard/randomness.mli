(** Distributed randomness generation (Section 5.1), plus the RandHound
    cost model it is compared against (Figure 11 right).

    Every node invokes its RandomnessBeacon enclave with the epoch number;
    enclaves answer with a signed ⟨e, rnd⟩ certificate only when their
    private l-bit draw q is zero.  Certificates are broadcast; after the
    synchronous bound ∆ nodes lock in the lowest rnd received.  If nobody
    was lucky the epoch number is bumped and the round repeats
    (probability (1-2^-l)^N). *)

type outcome = {
  rnd : int64;              (** the agreed seed *)
  rounds : int;             (** 1 + number of empty repeats *)
  elapsed : float;          (** virtual seconds until nodes lock in *)
  certificates : int;       (** certificates broadcast in the final round *)
  messages : int;           (** total broadcast messages across rounds *)
}

val paper_l_bits : n:int -> int
(** The paper's setting l = log₂(N) - log₂(log₂(N)), giving O(N·logN)
    communication with repeat probability < 2⁻¹¹. *)

val run :
  ?seed:int64 ->
  n:int ->
  topology:Repro_sim.Topology.t ->
  delta:float ->
  l_bits:int ->
  ?byzantine_withhold:int ->
  unit ->
  outcome
(** Simulate one full beacon agreement.  [byzantine_withhold] nodes
    suppress their own certificates (the strongest bias an attacker can
    attempt — the analysis shows it cannot help because the enclave only
    answers once per epoch).  All honest nodes must lock the same value or
    the run raises. *)

val measured_delta : topology:Repro_sim.Topology.t -> n:int -> float
(** The paper's rule: 3× the maximum measured propagation delay of a 1 KB
    message in the given deployment. *)

val randhound_runtime : n:int -> group:int -> topology:Repro_sim.Topology.t -> float
(** Cost model of RandHound (Syta et al., S&P'17) as configured in
    OmniLedger (c = 16): grouped PVSS with O(N·c²) communication and
    verification, dominated by c² public-key operations per node plus a
    leader aggregation round.  Returns expected runtime in seconds. *)
