(** Lockstep BFT baselines: Tendermint and Istanbul BFT (Figure 2).

    Both protocols rotate the proposer every height and decide one block at
    a time — propose, prevote (all-to-all), precommit (all-to-all), commit
    — with a locking rule for safety.  Unlike Hyperledger's PBFT they
    cannot pipeline: the next height starts only when the previous block is
    final, which is exactly why they fall behind at scale (Appendix C.2).

    The IBFT flavour reproduces the lock-release defect the paper observed
    in Quorum: a replica that locked a value in a failed round does not
    properly release the lock, so a later-round proposer offering a
    different block cannot gather a quorum until the locked value is
    re-proposed — occasionally deadlocking the height for a full timeout
    cascade. *)

type flavour = Tendermint | Ibft

type msg

type committee

val create :
  engine:Repro_sim.Engine.t ->
  keystore:Repro_crypto.Keys.keystore ->
  costs:Repro_crypto.Cost_model.t ->
  flavour:flavour ->
  n:int ->
  batch_max:int ->
  metrics:Repro_sim.Metrics.t ->
  send:(src:int -> dst:int -> channel:Repro_sim.Inbox.channel -> bytes:int -> msg -> unit) ->
  charge:(member:int -> float -> unit) ->
  committee

val start : committee -> unit

val handle : committee -> member:int -> msg -> unit

val submit : committee -> Types.request -> msg
(** Wire message a client sends (to any replica; requests gossip to the
    current proposer). *)

val request_channel : Repro_sim.Inbox.channel

val bytes_of_msg : msg -> int

val height : committee -> member:int -> int

val round_changes : committee -> int
