(** Raft as integrated in Quorum (Figure 2's crash-fault baseline).

    Full leader election (randomized timeouts, terms, majority votes) and
    log replication, but with Quorum's naive blockchain integration: the
    leader only constructs block [i+1] after block [i] is finalized, so
    consensus proceeds in lockstep, and every transaction pays the EVM +
    Merkle-tree execution cost that makes Quorum transactions expensive
    (Appendix C.2).  Message authentication uses cheap MACs — Raft's
    advantage — which is why its curve is flat in N but capped low. *)

type msg

type cluster

val create :
  engine:Repro_sim.Engine.t ->
  costs:Repro_crypto.Cost_model.t ->
  n:int ->
  batch_max:int ->
  metrics:Repro_sim.Metrics.t ->
  send:(src:int -> dst:int -> channel:Repro_sim.Inbox.channel -> bytes:int -> msg -> unit) ->
  charge:(member:int -> float -> unit) ->
  cluster

val start : cluster -> unit

val handle : cluster -> member:int -> msg -> unit

val submit : cluster -> Types.request -> msg

val request_channel : Repro_sim.Inbox.channel

val bytes_of_msg : msg -> int

val crash : cluster -> member:int -> unit
(** Crash-stop a member (for election tests); pair with the node's own
    [Node.crash] in the embedding. *)

val leader_id : cluster -> int option
(** Current leader if one is established (highest term wins). *)

val committed_index : cluster -> member:int -> int

val elections : cluster -> int
