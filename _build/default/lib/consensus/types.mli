(** Shared vocabulary of the consensus protocols. *)

type request = {
  req_id : int;       (** globally unique *)
  client : int;       (** submitting client id *)
  submitted : float;  (** virtual submission time, for latency accounting *)
  size : int;         (** serialized bytes *)
  op_tag : int;       (** opaque handle the application layer resolves to an
                          operation (chaincode call, coordination step...) *)
}

val request :
  req_id:int -> client:int -> submitted:float -> ?size:int -> ?op_tag:int -> unit -> request

type phase = Prepare_phase | Commit_phase

val phase_log : phase -> int
(** A2M log index for a phase (pre-prepare uses log 0). *)

val digest_of_batch : request list -> int
(** Structural batch digest used as the value agreed upon.  (Real SHA-256
    hashing of batches is exercised by the ledger layer; consensus charges
    hash cost to the simulated clock instead — see DESIGN.md.) *)

val batch_bytes : request list -> int

val pp_phase : Format.formatter -> phase -> unit
