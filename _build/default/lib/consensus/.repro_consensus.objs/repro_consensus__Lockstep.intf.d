lib/consensus/lockstep.mli: Repro_crypto Repro_sim Types
