lib/consensus/types.ml: Format Hashtbl List
