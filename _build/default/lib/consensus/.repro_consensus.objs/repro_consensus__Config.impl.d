lib/consensus/config.ml: Repro_sim
