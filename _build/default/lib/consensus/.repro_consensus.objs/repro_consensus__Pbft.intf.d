lib/consensus/pbft.mli: Config Repro_crypto Repro_sgx Repro_sim Types
