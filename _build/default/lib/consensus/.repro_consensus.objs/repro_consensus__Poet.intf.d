lib/consensus/poet.mli: Repro_sim
