lib/consensus/raft.ml: Array Cost_model Engine Hashtbl Inbox List Metrics Option Queue Repro_crypto Repro_sim Repro_util Stdlib Types
