lib/consensus/config.mli: Repro_sim
