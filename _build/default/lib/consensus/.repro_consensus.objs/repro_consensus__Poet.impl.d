lib/consensus/poet.ml: Array Cost_model Engine Float Hashtbl Keys List Repro_crypto Repro_sgx Repro_sim Repro_util Rng Stdlib Topology
