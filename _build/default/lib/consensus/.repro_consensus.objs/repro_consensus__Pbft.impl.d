lib/consensus/pbft.ml: A2m Aggregator Array Config Cost_model Enclave Engine Faults Float Hashtbl Inbox Keys List Metrics Option Queue Quorum Repro_crypto Repro_sgx Repro_sim Repro_util Stdlib Types
