lib/consensus/quorum.mli:
