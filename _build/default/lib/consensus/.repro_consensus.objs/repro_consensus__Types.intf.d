lib/consensus/types.mli: Format
