lib/consensus/lockstep.ml: Array Cost_model Engine Hashtbl Inbox Keys List Metrics Queue Quorum Repro_crypto Repro_sim Types
