lib/consensus/quorum.ml: Bytes Hashtbl List
