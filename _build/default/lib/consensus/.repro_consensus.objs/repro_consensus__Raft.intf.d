lib/consensus/raft.mli: Repro_crypto Repro_sim Types
