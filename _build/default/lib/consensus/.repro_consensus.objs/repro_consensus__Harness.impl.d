lib/consensus/harness.ml: Array Config Cost_model Engine Faults Format Hashtbl Inbox Keys List Metrics Network Node Pbft Repro_crypto Repro_sim Repro_util Rng Stats Stdlib Topology Types
