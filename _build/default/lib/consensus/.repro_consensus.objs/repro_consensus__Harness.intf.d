lib/consensus/harness.mli: Config Format Repro_crypto Repro_sim
