(** PoET and PoET+ (Section 4.2, Appendix C.1).

    Nakamoto-style consensus: every node asks its enclave for a random
    [waitTime]; the shortest valid wait proposes the next block.  Forks
    arise when several waits expire within one block-propagation delay;
    losing blocks are stale.  PoET+ draws an extra [l]-bit value [q] inside
    the enclave and only certificates with [q = 0] are valid, shrinking the
    expected field of competitors from n to n·2^-l and with it the stale
    rate.  The paper sets l = log₂(N)/2.

    The simulation is block-level: block bodies of the configured size
    propagate over the topology's links (bandwidth + latency), the sender's
    uplink serializes its broadcast, and each node follows first-received
    fork choice with production-time tie-break — stale blocks are those
    produced but not adopted. *)

type result = {
  produced : int;       (** blocks produced across the network *)
  adopted : int;        (** blocks on the canonical chain *)
  stale_rate : float;   (** (produced - adopted) / produced *)
  throughput : float;   (** committed transactions per second *)
  mean_interval : float;(** canonical inter-block time *)
}

val run :
  ?seed:int64 ->
  ?duration:float ->
  n:int ->
  topology:Repro_sim.Topology.t ->
  block_mb:float ->
  block_time:float ->
  l_bits:int ->
  tx_bytes:int ->
  unit ->
  result
(** [l_bits = 0] is plain PoET.  [block_time] is the target mean interval
    between valid certificates network-wide; the per-node exponential mean
    is scaled by n·2^-l to keep it constant across configurations, as the
    Sawtooth difficulty adjustment does. *)

val plus_l_bits : n:int -> int
(** The paper's PoET+ setting l = log₂(N)/2, rounded. *)
