type digest = string

(* Round constants: first 32 bits of the fractional parts of the cube roots
   of the first 64 primes. *)
let k =
  [|
    0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl; 0x59f111f1l;
    0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l; 0x243185bel; 0x550c7dc3l;
    0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l; 0xc19bf174l; 0xe49b69c1l; 0xefbe4786l;
    0x0fc19dc6l; 0x240ca1ccl; 0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal;
    0x983e5152l; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
    0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl; 0x53380d13l;
    0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l; 0xa2bfe8a1l; 0xa81a664bl;
    0xc24b8b70l; 0xc76c51a3l; 0xd192e819l; 0xd6990624l; 0xf40e3585l; 0x106aa070l;
    0x19a4c116l; 0x1e376c08l; 0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al;
    0x5b9cca4fl; 0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
    0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l;
  |]

type state = {
  h : int32 array; (* 8 words *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int64; (* total message bytes *)
  w : int32 array; (* 64-word message schedule, reused across blocks *)
}

let init () =
  {
    h =
      [|
        0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al;
        0x510e527fl; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l;
      |];
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0L;
    w = Array.make 64 0l;
  }

let ( >>> ) x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
let ( ^^ ) = Int32.logxor
let ( &&& ) = Int32.logand
let ( +% ) = Int32.add

let compress st block offset =
  let w = st.w in
  for i = 0 to 15 do
    let b j = Int32.of_int (Char.code (Bytes.get block (offset + (4 * i) + j))) in
    w.(i) <-
      Int32.logor
        (Int32.shift_left (b 0) 24)
        (Int32.logor (Int32.shift_left (b 1) 16) (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
  done;
  for i = 16 to 63 do
    let s0 = (w.(i - 15) >>> 7) ^^ (w.(i - 15) >>> 18) ^^ Int32.shift_right_logical w.(i - 15) 3 in
    let s1 = (w.(i - 2) >>> 17) ^^ (w.(i - 2) >>> 19) ^^ Int32.shift_right_logical w.(i - 2) 10 in
    w.(i) <- w.(i - 16) +% s0 +% w.(i - 7) +% s1
  done;
  let a = ref st.h.(0) and b = ref st.h.(1) and c = ref st.h.(2) and d = ref st.h.(3) in
  let e = ref st.h.(4) and f = ref st.h.(5) and g = ref st.h.(6) and h = ref st.h.(7) in
  for i = 0 to 63 do
    let s1 = (!e >>> 6) ^^ (!e >>> 11) ^^ (!e >>> 25) in
    let ch = (!e &&& !f) ^^ (Int32.lognot !e &&& !g) in
    let temp1 = !h +% s1 +% ch +% k.(i) +% w.(i) in
    let s0 = (!a >>> 2) ^^ (!a >>> 13) ^^ (!a >>> 22) in
    let maj = (!a &&& !b) ^^ (!a &&& !c) ^^ (!b &&& !c) in
    let temp2 = s0 +% maj in
    h := !g;
    g := !f;
    f := !e;
    e := !d +% temp1;
    d := !c;
    c := !b;
    b := !a;
    a := temp1 +% temp2
  done;
  st.h.(0) <- st.h.(0) +% !a;
  st.h.(1) <- st.h.(1) +% !b;
  st.h.(2) <- st.h.(2) +% !c;
  st.h.(3) <- st.h.(3) +% !d;
  st.h.(4) <- st.h.(4) +% !e;
  st.h.(5) <- st.h.(5) +% !f;
  st.h.(6) <- st.h.(6) +% !g;
  st.h.(7) <- st.h.(7) +% !h

let feed st s =
  let len = String.length s in
  st.total <- Int64.add st.total (Int64.of_int len);
  let pos = ref 0 in
  (* Fill a partial block first. *)
  if st.buf_len > 0 then begin
    let need = 64 - st.buf_len in
    let take = Stdlib.min need len in
    Bytes.blit_string s 0 st.buf st.buf_len take;
    st.buf_len <- st.buf_len + take;
    pos := take;
    if st.buf_len = 64 then begin
      compress st st.buf 0;
      st.buf_len <- 0
    end
  end;
  (* Whole blocks directly from the input. *)
  let tmp = Bytes.create 64 in
  while len - !pos >= 64 do
    Bytes.blit_string s !pos tmp 0 64;
    compress st tmp 0;
    pos := !pos + 64
  done;
  (* Stash the tail. *)
  if !pos < len then begin
    Bytes.blit_string s !pos st.buf st.buf_len (len - !pos);
    st.buf_len <- st.buf_len + (len - !pos)
  end

let finish st =
  let bit_len = Int64.mul st.total 8L in
  (* Append 0x80, zero padding, and the 64-bit big-endian length. *)
  let pad_len =
    let rem = (st.buf_len + 1 + 8) mod 64 in
    if rem = 0 then 0 else 64 - rem
  in
  let tail = Bytes.make (1 + pad_len + 8) '\x00' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    Bytes.set tail
      (1 + pad_len + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len (8 * (7 - i))) 0xFFL)))
  done;
  feed st (Bytes.to_string tail);
  assert (st.buf_len = 0);
  String.init 32 (fun i ->
      let word = st.h.(i / 4) in
      Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical word (8 * (3 - (i mod 4)))) 0xFFl)))

let digest_string s =
  let st = init () in
  feed st s;
  finish st

let digest_concat parts =
  let st = init () in
  List.iter (feed st) parts;
  finish st

let to_hex d =
  let hex = "0123456789abcdef" in
  String.init 64 (fun i ->
      let byte = Char.code d.[i / 2] in
      if i mod 2 = 0 then hex.[byte lsr 4] else hex.[byte land 0xF])

let of_raw_exn s =
  if String.length s <> 32 then invalid_arg "Sha256.of_raw_exn: expected 32 bytes";
  s

let to_raw d = d

let equal = String.equal

let compare = String.compare

let hmac ~key msg =
  let block = 64 in
  let key = if String.length key > block then (digest_string key : digest :> string) else key in
  let pad c =
    String.init block (fun i ->
        let k = if i < String.length key then Char.code key.[i] else 0 in
        Char.chr (k lxor c))
  in
  let inner = digest_concat [ pad 0x36; msg ] in
  digest_concat [ pad 0x5c; (inner :> string) ]
