(** Latency model of trusted-hardware and cryptographic operations.

    The paper ran SGX in simulation mode and injected the operation costs it
    measured on a Skylake 6970HQ (Table 2).  This module is that table: all
    simulated components charge these durations (in seconds) to the virtual
    clock when they perform the corresponding operation. *)

type t = {
  ecdsa_sign : float;        (** 458.4 µs *)
  ecdsa_verify : float;      (** 844.2 µs *)
  sha256 : float;            (** 2.5 µs *)
  ahl_append : float;        (** 465.3 µs — attested-log append incl. TEE signing *)
  ahlr_aggregate_base : float;
      (** AHLR message aggregation less its per-signature verifications; the
          published 8031.2 µs at f = 8 decomposes as base + 9 verifies. *)
  beacon_invoke : float;     (** 482.2 µs — RandomnessBeacon certificate *)
  enclave_switch : float;    (** 2.7 µs per ecall/ocall transition *)
  remote_attestation : float;(** ~2 ms, once per epoch per peer pair *)
  seal : float;              (** sealing a log checkpoint to disk *)
  tx_execute : float;        (** executing one transaction against state *)
  poet_cert : float;         (** PoET wait-certificate issuance *)
}

val default : t
(** Table 2 values. *)

val ahlr_aggregate : t -> f:int -> float
(** Cost of aggregating a quorum of [f + 1] signed messages inside the
    relay enclave: base + (f + 1) ECDSA verifications + switch.  Matches
    the published 8031.2 µs at [f = 8]. *)

val verify_batch : t -> int -> float
(** Cost of verifying [n] signatures. *)

val free : t
(** All-zero model, for tests that want pure protocol-logic timing. *)
