lib/crypto/keys.mli: Repro_util Sha256
