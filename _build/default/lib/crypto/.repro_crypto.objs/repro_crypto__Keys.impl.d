lib/crypto/keys.ml: Array Hashtbl Int64 Repro_util Rng Sha256
