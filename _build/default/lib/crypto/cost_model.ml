type t = {
  ecdsa_sign : float;
  ecdsa_verify : float;
  sha256 : float;
  ahl_append : float;
  ahlr_aggregate_base : float;
  beacon_invoke : float;
  enclave_switch : float;
  remote_attestation : float;
  seal : float;
  tx_execute : float;
  poet_cert : float;
}

let us x = x *. 1e-6

let default =
  {
    ecdsa_sign = us 458.4;
    ecdsa_verify = us 844.2;
    sha256 = us 2.5;
    ahl_append = us 465.3;
    (* 8031.2 µs at f = 8 means base = 8031.2 - 9 * 844.2 = 433.4 µs. *)
    ahlr_aggregate_base = us 433.4;
    beacon_invoke = us 482.2;
    enclave_switch = us 2.7;
    remote_attestation = 2e-3;
    seal = us 120.0;
    tx_execute = us 80.0;
    poet_cert = us 460.0;
  }

let ahlr_aggregate t ~f =
  t.ahlr_aggregate_base +. (float_of_int (f + 1) *. t.ecdsa_verify) +. t.enclave_switch

let verify_batch t n = float_of_int n *. t.ecdsa_verify

let free =
  {
    ecdsa_sign = 0.0;
    ecdsa_verify = 0.0;
    sha256 = 0.0;
    ahl_append = 0.0;
    ahlr_aggregate_base = 0.0;
    beacon_invoke = 0.0;
    enclave_switch = 0.0;
    remote_attestation = 0.0;
    seal = 0.0;
    tx_execute = 0.0;
    poet_cert = 0.0;
  }
