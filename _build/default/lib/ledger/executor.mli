(** Participant-side execution of the 2PL/2PC phases (Section 6.3).

    Each shard's replicas run these functions deterministically against
    their partition state when the corresponding consensus request
    (PrepareTx / CommitTx / AbortTx) executes:

    - {b prepare}: acquire all locks for the transaction's local keys
      (writing ["L_" ^ key] tuples to the blockchain state) and validate
      preconditions (sufficient funds for debits).  Any failure votes
      PrepareNotOK and takes no locks.
    - {b commit}: apply the writes and release the locks.
    - {b abort}: release the locks without applying anything. *)

type vote = Prepare_ok | Prepare_not_ok of string

type prepare_error =
  | Lock_conflict of { key : string; holder : int }
      (** first conflicting key and the transaction holding it *)
  | Insufficient of string  (** account failing validation *)

val prepare : State.t -> txid:int -> Tx.op list -> vote

val try_prepare : State.t -> txid:int -> Tx.op list -> (unit, prepare_error) result
(** Like {!prepare} but reports what blocked it, so alternative
    concurrency-control policies (Section 6.4's future work) can decide to
    wait instead of aborting. *)

val commit : State.t -> txid:int -> Tx.op list -> unit
(** No-op for a transaction whose prepare this shard never executed
    (defensive: commit without locks applies nothing). *)

val abort : State.t -> txid:int -> Tx.op list -> unit

val execute_single : State.t -> txid:int -> Tx.op list -> (unit, string) Stdlib.result
(** Single-shard fast path: prepare+commit in one step, no lock tuples
    left behind. *)

val balance : State.t -> string -> int
(** Account balance helper (0 when absent). *)

val set_balance : State.t -> string -> int -> unit
