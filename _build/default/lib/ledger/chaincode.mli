(** Hyperledger-style chaincode interface.

    A chaincode exposes named functions over the shard's key-value state.
    For sharding, a single-shard function such as SmallBank's [sendPayment]
    is refactored (Section 6.3) into [prepare*] / [commit*] / [abort*]
    functions that the coordination protocol invokes; this module provides
    the dispatch plumbing, {!Kvstore_cc} and {!Smallbank_cc} the two
    BLOCKBENCH chaincodes. *)

type invocation = { fn : string; args : string list }

type response = Success of string | Failure of string

type t

val name : t -> string

val define :
  name:string -> (State.t -> txid:int -> invocation -> response) -> t

val invoke : t -> State.t -> txid:int -> invocation -> response
(** Unknown functions return [Failure]. *)

val functions_of_ops : txid:int -> phase:[ `Prepare | `Commit | `Abort ] -> Tx.op list -> invocation
(** Bridge from the coordinator's op lists to a chaincode invocation (used
    by the sharded system so any chaincode built on {!Executor} semantics
    can serve as the participant logic). *)
