(** Blocks and the hash-chained ledger.

    Each committee maintains one chain over its shard.  Headers commit to
    the transaction batch (Merkle root over serialized transactions) and
    to the post-state root, and chain by SHA-256 parent pointers. *)

type header = {
  height : int;
  parent : Repro_crypto.Sha256.digest;
  tx_root : Repro_crypto.Sha256.digest;
  state_root : Repro_crypto.Sha256.digest;
  timestamp : float;
}

type t = { header : header; txs : string list (* serialized transactions *) }

val hash : t -> Repro_crypto.Sha256.digest

val genesis : Repro_crypto.Sha256.digest -> t
(** [genesis state_root] at height 0 with a zero parent. *)

val next :
  parent:t -> txs:string list -> state_root:Repro_crypto.Sha256.digest -> timestamp:float -> t

val verify_link : parent:t -> child:t -> bool
(** Height increments and the child's parent pointer matches. *)

val tx_proof : t -> int -> Repro_crypto.Merkle.proof
(** Inclusion proof for transaction [i] against [header.tx_root]. *)

val verify_tx : t -> tx:string -> Repro_crypto.Merkle.proof -> bool

(** Append-only chain with integrity checking. *)
module Chain : sig
  type chain

  val create : state_root:Repro_crypto.Sha256.digest -> chain

  val append : chain -> txs:string list -> state_root:Repro_crypto.Sha256.digest -> timestamp:float -> t

  val tip : chain -> t

  val height : chain -> int

  val at : chain -> int -> t option

  val validate : chain -> bool
  (** Recheck every link and every tx root; the integrity test for
      rollback/tampering scenarios. *)
end
