type t = { state : State.t }

let create state = { state }

let lock_key key = "L_" ^ key

let holder t key =
  match State.get_data t.state (lock_key key) with
  | None -> None
  | Some data -> int_of_string_opt data

let acquire t ~txid key =
  match holder t key with
  | Some owner -> owner = txid
  | None ->
      State.put t.state (lock_key key) (string_of_int txid);
      true

let acquire_all t ~txid keys =
  let rec go newly = function
    | [] -> true
    | key :: rest -> (
        match holder t key with
        | Some owner when owner = txid -> go newly rest
        | Some _ ->
            (* Conflict: roll back only the locks this call took. *)
            List.iter (fun k -> State.delete t.state (lock_key k)) newly;
            false
        | None ->
            State.put t.state (lock_key key) (string_of_int txid);
            go (key :: newly) rest)
  in
  go [] keys

let release t ~txid key =
  match holder t key with
  | Some owner when owner = txid -> State.delete t.state (lock_key key)
  | Some _ | None -> ()

let release_all t ~txid keys = List.iter (release t ~txid) keys

let held_by t ~txid =
  List.filter_map
    (fun k ->
      if String.length k > 2 && String.sub k 0 2 = "L_" then
        let base = String.sub k 2 (String.length k - 2) in
        match holder t base with Some owner when owner = txid -> Some base | _ -> None
      else None)
    (State.keys t.state)
