(** Versioned key-value blockchain state (Hyperledger-style world state).

    Keys and values are strings; every write bumps the key's version so
    tests can assert serializability.  A Merkle root over the sorted
    key-value pairs anchors the state for block headers and for epoch-
    transition state transfer (Section 5.3). *)

type t

type value = { data : string; version : int }

val create : unit -> t

val get : t -> string -> value option

val get_data : t -> string -> string option

val put : t -> string -> string -> unit

val delete : t -> string -> unit

val mem : t -> string -> bool

val size : t -> int

val keys : t -> string list
(** Sorted. *)

val root : t -> Repro_crypto.Sha256.digest
(** Merkle root over sorted (key, value) leaves. *)

val snapshot : t -> (string * value) list
(** Sorted association list; the state-transfer payload. *)

val restore : (string * value) list -> t

val equal : t -> t -> bool
(** Same keys, data, and versions. *)
