lib/ledger/tx.mli: Format Repro_crypto
