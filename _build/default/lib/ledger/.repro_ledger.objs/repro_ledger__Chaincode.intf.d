lib/ledger/chaincode.mli: State Tx
