lib/ledger/executor.mli: State Stdlib Tx
