lib/ledger/state.ml: Hashtbl List Merkle Option Printf Repro_crypto
