lib/ledger/utxo.mli:
