lib/ledger/chaincode.ml: List State Tx
