lib/ledger/smallbank_cc.ml: Chaincode Executor Kvstore_cc List State String Tx
