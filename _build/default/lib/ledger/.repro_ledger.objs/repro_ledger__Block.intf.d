lib/ledger/block.mli: Repro_crypto
