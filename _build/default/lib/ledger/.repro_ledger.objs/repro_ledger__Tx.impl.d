lib/ledger/tx.ml: Buffer Char Format List Printf Repro_crypto Sha256 String
