lib/ledger/smallbank_cc.mli: Chaincode State Tx
