lib/ledger/utxo.ml: Hashtbl List Option Printf
