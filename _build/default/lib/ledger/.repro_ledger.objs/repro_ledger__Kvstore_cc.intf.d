lib/ledger/kvstore_cc.mli: Chaincode Tx
