lib/ledger/locks.mli: State
