lib/ledger/state.mli: Repro_crypto
