lib/ledger/contract.ml: Chaincode Executor Kvstore_cc List Printf Tx
