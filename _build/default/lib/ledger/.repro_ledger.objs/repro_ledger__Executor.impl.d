lib/ledger/executor.ml: Hashtbl List Locks Option State Tx
