lib/ledger/locks.ml: List State String
