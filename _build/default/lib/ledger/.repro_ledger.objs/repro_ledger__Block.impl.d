lib/ledger/block.ml: List Merkle Printf Repro_crypto Sha256
