lib/ledger/kvstore_cc.ml: Chaincode Executor List State Tx
