lib/ledger/contract.mli: Chaincode Tx
