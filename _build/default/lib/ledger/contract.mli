(** Typed contract DSL with automatic multi-shard transformation — the
    Section 6.4 extension ("add programming language features that, given a
    single-shard chaincode implementation, automatically analyze the
    functions and transform them to support multi-shard execution").

    A contract is written once as a list of statements over its
    parameters.  From that single definition the library derives:

    - {!compile}: the operation list a coordinator needs (usable directly
      with [System.submit], which plays the role of the §6.4 client
      library hiding the coordination protocol);
    - {!to_chaincode}: a Hyperledger-style chaincode exposing both the
      original single-shard entry point and the auto-generated
      [prepare]/[commit]/[abort] functions, with no manual refactoring;
    - {!analyze}: which shards an invocation touches, so callers know
      whether it is a distributed transaction before submitting. *)

type arg =
  | Param of int   (** i-th invocation argument *)
  | Lit of string  (** literal *)

type amount =
  | Amount_param of int  (** i-th argument parsed as an integer *)
  | Amount_lit of int

type stmt =
  | Transfer of { from_ : arg; to_ : arg; amount : amount }
      (** guarded debit + credit *)
  | Deposit of { to_ : arg; amount : amount }
  | Withdraw of { from_ : arg; amount : amount }  (** guarded debit *)
  | Set of { key : arg; value : arg }             (** blind write *)

type t

val define : name:string -> arity:int -> stmt list -> t
(** Validates that every [Param i] satisfies [0 <= i < arity].
    Raises [Invalid_argument] otherwise. *)

val name : t -> string

val arity : t -> int

val compile : t -> args:string list -> (Tx.op list, string) result
(** Substitute arguments into the body.  Fails on arity mismatch or a
    non-integer amount argument. *)

val analyze : t -> shards:int -> args:string list -> [ `Single of int | `Cross of int list ]
(** Static shard footprint of an invocation (raises on compile failure). *)

val to_chaincode : t -> Chaincode.t
(** The derived chaincode: invoking [name t] with the contract's arguments
    executes single-shard (prepare+commit fused); the [prepare] / [commit]
    / [abort] entry points accept the coordinator's encoded op lists, as
    the sharded system dispatches them. *)
