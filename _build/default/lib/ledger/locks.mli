(** Two-phase-locking lock table (Section 6.2/6.3).

    The paper implements locks as blockchain tuples keyed ["L_" ^ acc]; the
    lock table here is that convention made explicit, layered over
    {!State}: acquiring writes the tuple, releasing deletes it, and lock
    ownership is the transaction id, so commit/abort can release exactly
    the locks their transaction wrote.  Locks are exclusive — blockchain
    transactions serialize within a shard, so shared locks buy nothing. *)

type t

val create : State.t -> t

val lock_key : string -> string
(** ["L_" ^ key], the paper's on-chain lock tuple name. *)

val acquire : t -> txid:int -> string -> bool
(** [acquire t ~txid key]: true if the lock was free or already held by
    [txid] (re-entrant). *)

val acquire_all : t -> txid:int -> string list -> bool
(** All-or-nothing: on any conflict, locks taken by this call are released
    again (no partial lock sets — the 2PL growing phase either completes
    for the prepare or the participant votes PrepareNotOK). *)

val holder : t -> string -> int option

val release : t -> txid:int -> string -> unit
(** Releases only if held by [txid]. *)

val release_all : t -> txid:int -> string list -> unit

val held_by : t -> txid:int -> string list
(** All keys currently locked by a transaction (sorted). *)
