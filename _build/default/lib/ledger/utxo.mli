(** Unspent-transaction-output model, as used by the sharded-blockchain
    baselines (Section 6.1).

    A coin is an output (owner, amount) of some transaction; a transaction
    consumes unspent coins and mints new ones of equal total value.  The
    module exists to make RapidChain's transaction-splitting executable —
    including the atomicity and isolation violations the paper
    demonstrates on it. *)

type coin_id = int

type coin = { id : coin_id; owner : string; amount : int }

type t

type tx = { inputs : coin_id list; outputs : (string * int) list }

val create : unit -> t

val mint : t -> owner:string -> amount:int -> coin
(** Faucet for test setup. *)

val coin : t -> coin_id -> coin option

val is_unspent : t -> coin_id -> bool

val apply : t -> tx -> (coin list, string) result
(** Atomically spend the inputs and create the outputs.  Fails — changing
    nothing — if an input is missing/spent or value is not conserved
    (outputs exceed inputs). *)

val unspent_of : t -> string -> coin list
(** All unspent coins of an owner (by id order). *)

val balance : t -> string -> int

val total_unspent : t -> int
(** Value conservation invariant for property tests. *)
