open Repro_crypto

type header = {
  height : int;
  parent : Sha256.digest;
  tx_root : Sha256.digest;
  state_root : Sha256.digest;
  timestamp : float;
}

type t = { header : header; txs : string list }

let zero = Sha256.digest_string "genesis-parent"

let header_bytes h =
  Printf.sprintf "%d|%s|%s|%s|%.6f" h.height
    (Sha256.to_hex h.parent) (Sha256.to_hex h.tx_root) (Sha256.to_hex h.state_root) h.timestamp

let hash t = Sha256.digest_string (header_bytes t.header)

let genesis state_root =
  {
    header =
      { height = 0; parent = zero; tx_root = Merkle.root []; state_root; timestamp = 0.0 };
    txs = [];
  }

let next ~parent ~txs ~state_root ~timestamp =
  {
    header =
      {
        height = parent.header.height + 1;
        parent = hash parent;
        tx_root = Merkle.root txs;
        state_root;
        timestamp;
      };
    txs;
  }

let verify_link ~parent ~child =
  child.header.height = parent.header.height + 1
  && Sha256.equal child.header.parent (hash parent)
  && Sha256.equal child.header.tx_root (Merkle.root child.txs)

let tx_proof t i = Merkle.prove t.txs i

let verify_tx t ~tx proof = Merkle.verify ~root:t.header.tx_root ~leaf:tx proof

module Chain = struct
  type chain = { mutable blocks : t list (* newest first *) }

  let create ~state_root = { blocks = [ genesis state_root ] }

  let tip c = List.hd c.blocks

  let append c ~txs ~state_root ~timestamp =
    let block = next ~parent:(tip c) ~txs ~state_root ~timestamp in
    c.blocks <- block :: c.blocks;
    block

  let height c = (tip c).header.height

  let at c h = List.find_opt (fun b -> b.header.height = h) c.blocks

  let validate c =
    let rec walk = function
      | [] | [ _ ] -> true
      | child :: (parent :: _ as rest) -> verify_link ~parent ~child && walk rest
    in
    walk c.blocks
end
