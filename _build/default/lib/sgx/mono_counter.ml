type t = { mutable value : int }

let create () = { value = 0 }

let read t = t.value

let increment t =
  t.value <- t.value + 1;
  t.value
