(** Remote attestation: proving that a peer runs the right enclave.

    Committee members attest each other once per epoch (the paper measured
    ~2 ms per attestation, cacheable).  A quote binds the enclave's
    measurement to its signing identity; verifiers check the signature and
    compare the measurement against the expected value. *)

type quote = {
  enclave_id : int;
  measurement : Repro_crypto.Sha256.digest;
  signature : Repro_crypto.Keys.signature;
}

val quote : Enclave.t -> quote
(** Produce an attestation quote; charges the remote-attestation cost. *)

val verify :
  Repro_crypto.Keys.keystore ->
  expected_measurement:Repro_crypto.Sha256.digest ->
  quote ->
  bool
(** True iff the signature is genuine for [enclave_id] and the measurement
    matches.  (Verification cost is charged by the caller, who knows whose
    CPU is doing the work.) *)

val msg_tag_of : enclave_id:int -> measurement:Repro_crypto.Sha256.digest -> int
(** The statement a quote signs, exposed for forgery tests. *)
