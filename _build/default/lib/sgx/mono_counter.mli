(** CPU monotonic counter.

    Unlike enclave memory, the hardware counter survives enclave restarts;
    Appendix A uses it to make the genesis-epoch beacon setup
    restart-evident. *)

type t

val create : unit -> t

val read : t -> int

val increment : t -> int
(** Returns the new value. *)
