(** Attested append-only memory (Chun et al., SOSP 2007) — the trusted log
    that removes equivocation from PBFT.

    The enclave keeps one log per consensus message type.  Before a replica
    may send a message, it appends the message digest to the corresponding
    log at the message's sequence slot and attaches the signed append proof;
    the enclave refuses to attest two different digests for the same
    (log, slot), so a Byzantine host cannot tell different peers different
    stories.  This is what lets AHL run with N = 2f + 1 (Section 4.1).

    The module also implements the Appendix-A recovery procedure: after a
    host-forced restart with (possibly stale) sealed state, the enclave
    refuses all appends until it has estimated an upper bound HM on the
    highest slot it could have attested before the crash, and has been
    shown a stable checkpoint at or beyond HM. *)

type t

type proof = {
  signer : int;
  log : int;
  slot : int;
  digest_tag : int;
  signature : Repro_crypto.Keys.signature;
}

type snapshot
(** Sealable image of the log heads. *)

val create : Enclave.t -> watermark_window:int -> t
(** [watermark_window] is L, the preset distance between low and high
    watermarks used to bound HM during recovery. *)

val enclave : t -> Enclave.t

val append : t -> log:int -> slot:int -> digest_tag:int -> proof option
(** Attest [digest_tag] at [(log, slot)].  Charges the AHL-append cost.
    Returns [None] — refusing to attest — if a *different* digest is
    already attested there (equivocation attempt) or if the enclave is
    recovering.  Re-appending the same digest returns a fresh proof. *)

val lookup : t -> log:int -> slot:int -> int option

val verify : Repro_crypto.Keys.keystore -> proof -> bool
(** Pure proof check (callers charge verification cost to their own CPU). *)

val truncate_below : t -> slot:int -> unit
(** Garbage-collect entries below a stable checkpoint. *)

val seal_state : t -> snapshot Sealing.sealed
(** Seal the current log heads for crash recovery. *)

val restart : t -> resume_with:snapshot Sealing.sealed option -> unit
(** Host restarts the enclave and supplies sealed state of its choosing —
    possibly stale (rollback attack) or absent.  The enclave loads what it
    can and enters recovery mode. *)

val is_recovering : t -> bool

val highest_attested : t -> int
(** Highest slot attested in any log (H in Appendix A). *)

(** {2 Appendix-A recovery} *)

val record_peer_checkpoint : t -> peer:int -> ckp:int -> unit
(** Feed one peer's answer to the "what is your last stable checkpoint"
    query.  Duplicate peers keep their latest answer; the enclave's own id
    is ignored. *)

val estimate_hm : t -> f:int -> int option
(** With at least [f + 1] distinct peer responses, returns
    HM = L + ckpM where ckpM is the (f+1)-th smallest response — an upper
    bound on any slot the pre-crash enclave could have attested (see the
    quorum-intersection argument in Appendix A).  [None] if not enough
    responses yet. *)

val finish_recovery : t -> f:int -> stable_checkpoint:int -> bool
(** Present a stable checkpoint; recovery completes (and appends resume)
    only if it is at or beyond HM. *)
