(** Data sealing with explicit rollback-attack modeling.

    Sealed blobs are bound to the sealing enclave's measurement and
    identity; a different enclave cannot unseal them, and tampered blobs
    are rejected.  What sealing does {e not} protect against is replay: the
    malicious host can feed a stale but correctly sealed blob to a
    restarted enclave (Matetic et al., USENIX Security'17).  Tests and the
    Appendix-A defense exercise exactly that attack via [`any sealed`]
    values kept by the host. *)

type 'a sealed

val seal : Enclave.t -> 'a -> 'a sealed
(** Charges the sealing cost. *)

val unseal : Enclave.t -> 'a sealed -> 'a option
(** [None] if the blob was sealed by a different enclave identity or
    measurement, or was tampered with. *)

val tamper : 'a sealed -> 'a -> 'a sealed
(** Host-side bit-flip: replace the payload without access to the sealing
    key.  Unsealing must fail. *)

val sealed_by : 'a sealed -> int
