(** AHLR vote-aggregation enclave (optimization 3, Section 4.1).

    The leader's enclave verifies [f + 1] signed consensus votes for the
    same statement and issues a single signed quorum proof, cutting
    communication from O(N²) to O(N).  Table 2 prices one aggregation at
    8031.2 µs for f = 8 — this per-block serial cost at the leader is why
    AHLR loses to AHL+ in practice. *)

type quorum_proof = {
  aggregator : int;
  stmt_tag : int;  (** the statement all votes signed, e.g. ⟨req, phase, round⟩ *)
  voters : int list;
  signature : Repro_crypto.Keys.signature;
}

val aggregate :
  Enclave.t ->
  f:int ->
  stmt_tag:int ->
  votes:Repro_crypto.Keys.signature list ->
  quorum_proof option
(** Charges the Table-2 aggregation cost.  Returns [None] unless the votes
    contain at least [f + 1] valid signatures from distinct signers over
    [stmt_tag]. *)

val verify : Repro_crypto.Keys.keystore -> f:int -> quorum_proof -> bool
(** A single signature verification at the receiver — the whole point of
    the optimization. *)
