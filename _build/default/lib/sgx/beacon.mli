(** RandomnessBeacon enclave (Section 5.1).

    At each epoch [e] the enclave draws two independent random values
    [q] (of [l] bits) and [rnd] with [sgx_read_rand], and returns a signed
    certificate ⟨e, rnd⟩ iff [q = 0].  Two defenses matter:

    - {b once per epoch}: a host cannot re-invoke to fish for a favourable
      [rnd] — re-invocation for an epoch already served (or refused)
      returns nothing new;
    - {b restart guard} (Appendix A): after a restart the enclave refuses
      to serve any epoch [e <> 0] until ∆ has elapsed since instantiation,
      so restarting cannot reopen the once-per-epoch window within the
      epoch's locking period; the genesis epoch is protected by a hardware
      monotonic counter instead. *)

type cert = { epoch : int; rnd : int64; signature : Repro_crypto.Keys.signature }

type outcome =
  | Cert of cert      (** q = 0: a certificate to broadcast *)
  | Unlucky           (** q <> 0: nothing to broadcast this epoch *)
  | Already_invoked   (** the epoch was already served this generation *)
  | Guard_active      (** restarted less than ∆ ago (e <> 0) *)
  | Genesis_replayed  (** e = 0 after a restart: monotonic counter defense *)

type t

val create : Enclave.t -> Mono_counter.t -> l_bits:int -> delta:float -> t
(** [l_bits] is the bit length of [q]; [delta] the network's synchronous
    bound ∆ used by the restart guard. *)

val invoke : t -> epoch:int -> outcome
(** Charges the beacon-invocation cost. *)

val verify : Repro_crypto.Keys.keystore -> cert -> bool

val restart : t -> unit
(** Host restarts the enclave, clearing the volatile served-epoch set. *)

val l_bits : t -> int

val repeat_probability : l_bits:int -> n:int -> float
(** Probability that {e no} node in a network of [n] obtains a certificate,
    forcing a retry: (1 - 2^-l)^n. *)

val expected_certs : l_bits:int -> n:int -> float
(** Expected number of broadcast certificates per round: n · 2^-l — the
    communication-overhead side of the trade-off. *)
