lib/sgx/beacon.mli: Enclave Mono_counter Repro_crypto
