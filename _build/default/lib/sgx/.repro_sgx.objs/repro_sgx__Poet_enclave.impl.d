lib/sgx/poet_enclave.ml: Cost_model Enclave Hashtbl Keys Repro_crypto
