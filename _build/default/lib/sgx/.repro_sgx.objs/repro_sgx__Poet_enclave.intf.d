lib/sgx/poet_enclave.mli: Enclave Repro_crypto
