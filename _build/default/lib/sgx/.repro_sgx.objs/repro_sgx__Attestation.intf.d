lib/sgx/attestation.mli: Enclave Repro_crypto
