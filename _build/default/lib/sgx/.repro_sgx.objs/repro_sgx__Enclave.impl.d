lib/sgx/enclave.ml: Cost_model Keys Printf Repro_crypto Repro_util Rng Sha256
