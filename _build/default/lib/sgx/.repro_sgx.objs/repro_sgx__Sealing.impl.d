lib/sgx/sealing.ml: Cost_model Enclave Hashtbl Keys Repro_crypto Sha256
