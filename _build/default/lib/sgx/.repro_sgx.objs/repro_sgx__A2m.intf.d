lib/sgx/a2m.mli: Enclave Repro_crypto Sealing
