lib/sgx/sealing.mli: Enclave
