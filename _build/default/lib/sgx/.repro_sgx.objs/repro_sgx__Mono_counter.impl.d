lib/sgx/mono_counter.ml:
