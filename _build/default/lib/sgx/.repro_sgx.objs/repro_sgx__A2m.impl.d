lib/sgx/a2m.ml: Cost_model Enclave Hashtbl Keys List Repro_crypto Sealing Stdlib
