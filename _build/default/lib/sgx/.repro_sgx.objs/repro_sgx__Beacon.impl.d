lib/sgx/beacon.ml: Cost_model Enclave Float Hashtbl Keys Mono_counter Repro_crypto
