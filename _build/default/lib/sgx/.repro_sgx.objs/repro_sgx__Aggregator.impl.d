lib/sgx/aggregator.ml: Cost_model Enclave Hashtbl Keys List Repro_crypto
