lib/sgx/aggregator.mli: Enclave Repro_crypto
