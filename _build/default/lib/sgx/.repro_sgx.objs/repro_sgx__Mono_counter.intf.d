lib/sgx/mono_counter.mli:
