lib/sgx/enclave.mli: Repro_crypto Repro_util
