(** Software trusted-execution-environment runtime.

    Models the SGX abstractions the paper relies on, under the paper's
    threat model (Section 3.3): the host is fully malicious — it can
    restart the enclave, replay sealed state, drop or reorder the enclave's
    outputs, and invoke it with arbitrary inputs — but it cannot tamper
    with enclave execution, forge enclave signatures, or bias
    [sgx_read_rand].  Enclave confidentiality is *not* assumed except for
    keys (the "sealed-glass proof" model), which the simulation mirrors:
    enclave state is plain OCaml data, only signing keys are held as
    unforgeable handles.

    Every trusted operation charges its Table-2 latency through the
    [charge] callback supplied by the host (a simulated node's CPU), so
    enclave costs shape protocol throughput exactly as in the paper. *)

type t

val create :
  keystore:Repro_crypto.Keys.keystore ->
  id:int ->
  measurement:string ->
  rng:Repro_util.Rng.t ->
  costs:Repro_crypto.Cost_model.t ->
  charge:(float -> unit) ->
  now:(unit -> float) ->
  t
(** [id] is the enclave's principal in the shared keystore (one enclave per
    node, sharing the node's id).  [measurement] names the enclave binary;
    attestation binds it to the signing key.  [now] provides
    [sgx_get_trusted_time]. *)

val id : t -> int

val measurement : t -> Repro_crypto.Sha256.digest

val costs : t -> Repro_crypto.Cost_model.t

val keystore : t -> Repro_crypto.Keys.keystore

val charge : t -> float -> unit
(** Charge simulated CPU time to the host. *)

val ecall : t -> unit
(** Charge one enclave transition. *)

val read_rand64 : t -> int64
(** [sgx_read_rand]: unbiased randomness the host cannot influence. *)

val read_rand_bits : t -> int -> int

val trusted_time : t -> float
(** [sgx_get_trusted_time]. *)

val sign : t -> msg_tag:int -> Repro_crypto.Keys.signature
(** Sign a statement with the enclave's key; charges ECDSA signing. *)

val verify : t -> Repro_crypto.Keys.signature -> msg_tag:int -> bool
(** Verify a (possibly foreign) enclave signature; charges ECDSA
    verification. *)

val sign_free : t -> msg_tag:int -> Repro_crypto.Keys.signature
(** Signing without charging — for operations whose Table-2 cost already
    includes the signature (e.g. the A2M append at 465.3 µs). *)

val restart : t -> unit
(** Host-initiated enclave restart: volatile state is lost.  Components
    holding volatile state watch {!generation}. *)

val generation : t -> int
(** Incremented on every restart. *)

val instantiated_at : t -> float
(** Trusted time of the last (re)start; the Appendix-A beacon defense
    compares against this. *)
