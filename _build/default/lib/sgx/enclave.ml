open Repro_util
open Repro_crypto

type t = {
  id : int;
  measurement : Sha256.digest;
  keystore : Keys.keystore;
  secret : Keys.secret;
  rng : Rng.t;
  costs : Cost_model.t;
  charge_cb : float -> unit;
  now : unit -> float;
  mutable generation : int;
  mutable instantiated_at : float;
}

let create ~keystore ~id ~measurement ~rng ~costs ~charge ~now =
  {
    id;
    measurement = Sha256.digest_string measurement;
    keystore;
    secret = Keys.gen keystore ~id;
    rng = Rng.split_named rng (Printf.sprintf "enclave-%d" id);
    costs;
    charge_cb = charge;
    now;
    generation = 0;
    instantiated_at = now ();
  }

let id t = t.id

let measurement t = t.measurement

let costs t = t.costs

let keystore t = t.keystore

let charge t cost = t.charge_cb cost

let ecall t = charge t t.costs.Cost_model.enclave_switch

let read_rand64 t =
  ecall t;
  Rng.next_int64 t.rng

let read_rand_bits t k =
  ecall t;
  Rng.bits t.rng k

let trusted_time t = t.now ()

let sign t ~msg_tag =
  charge t (t.costs.Cost_model.ecdsa_sign +. t.costs.Cost_model.enclave_switch);
  Keys.sign t.secret ~msg_tag

let verify t signature ~msg_tag =
  charge t t.costs.Cost_model.ecdsa_verify;
  Keys.verify t.keystore signature ~msg_tag

let sign_free t ~msg_tag = Keys.sign t.secret ~msg_tag

let restart t =
  t.generation <- t.generation + 1;
  t.instantiated_at <- t.now ()

let generation t = t.generation

let instantiated_at t = t.instantiated_at
