(** Proof-of-Elapsed-Time enclave (Section 4.2).

    Each node asks its enclave for a randomized [waitTime]; only after it
    expires does the enclave issue a wait certificate, and the node with
    the shortest wait proposes the next block.  PoET+ additionally draws an
    [l]-bit value [q] bound to the certificate and deems the certificate
    valid only when [q = 0], thinning the field of competing proposers to
    an expected n·2^-l and thereby cutting the stale-block rate. *)

type wait_cert = {
  node : int;
  height : int;
  wait : float;         (** the drawn waitTime, in seconds *)
  lucky : bool;         (** PoET+: q = 0; plain PoET always [true] *)
  signature : Repro_crypto.Keys.signature;
}

type t

val create : Enclave.t -> t

val draw_wait : t -> height:int -> mean_wait:float -> float
(** Draw (or recall) this height's [waitTime] — exponential with the given
    mean.  Repeated calls for the same height return the same value: the
    host cannot redraw a shorter wait. *)

val certificate : t -> height:int -> l_bits:int -> now:float -> wait_cert option
(** Issue the certificate; [None] if the wait has not yet elapsed since the
    draw (cheating host) or nothing was drawn.  [l_bits = 0] gives plain
    PoET ([lucky] always true). *)

val verify : Repro_crypto.Keys.keystore -> wait_cert -> bool

val wins : wait_cert -> wait_cert -> bool
(** [wins a b]: certificate [a] beats [b] — valid ([lucky]) and strictly
    shorter wait, with node id as deterministic tie-break. *)
