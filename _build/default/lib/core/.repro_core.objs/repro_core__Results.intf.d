lib/core/results.mli:
