lib/core/coordination.ml: Array List Repro_crypto Repro_ledger
