lib/core/workload.mli: Repro_ledger Repro_util System
