lib/core/workload.ml: Executor List Repro_ledger Repro_sim Repro_util Rng Smallbank_cc System Tx Zipf
