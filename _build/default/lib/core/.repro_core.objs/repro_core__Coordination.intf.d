lib/core/coordination.mli: Repro_crypto Repro_ledger
