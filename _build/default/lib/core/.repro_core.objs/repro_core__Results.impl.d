lib/core/results.ml: Buffer Char Filename List Printf Repro_util String Sys Table
