lib/core/experiment.mli: Results
