lib/core/system.mli: Repro_consensus Repro_ledger Repro_shard Repro_sim Repro_util
