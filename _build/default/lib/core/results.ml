open Repro_util

type panel = {
  title : string;
  x_label : string;
  columns : string list;
  rows : (float * float list) list;
}

type figure = { id : string; caption : string; panels : panel list }

let panel ~title ~x_label ~columns ~rows = { title; x_label; columns; rows }

let figure ~id ~caption panels = { id; caption; panels }

let render f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "==== %s: %s ====\n" f.id f.caption);
  List.iter
    (fun p ->
      if p.columns = [] && p.rows = [] then Buffer.add_string buf (p.title ^ "\n")
      else
        Buffer.add_string buf
          (Table.series ~title:p.title ~x_label:p.x_label ~columns:p.columns ~rows:p.rows))
    f.panels;
  Buffer.contents buf

let print f = print_string (render f)

let text_figure ~id ~caption body =
  { id; caption; panels = [ { title = body; x_label = ""; columns = []; rows = [] } ] }

let slug s =
  String.map (fun c -> if ('a' <= Char.lowercase_ascii c && Char.lowercase_ascii c <= 'z') || ('0' <= c && c <= '9') then Char.lowercase_ascii c else '-') s

let to_csv f =
  List.filter_map
    (fun p ->
      if p.columns = [] then None
      else begin
        let buf = Buffer.create 256 in
        Buffer.add_string buf (String.concat "," (p.x_label :: p.columns));
        Buffer.add_char buf '\n';
        List.iter
          (fun (x, ys) ->
            Buffer.add_string buf
              (String.concat "," (List.map (Printf.sprintf "%g") (x :: ys)));
            Buffer.add_char buf '\n')
          p.rows;
        Some (Printf.sprintf "%s-%s.csv" f.id (slug p.title), Buffer.contents buf)
      end)
    f.panels

let save_csv ~dir f =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, contents) ->
      let oc = open_out (Filename.concat dir name) in
      output_string oc contents;
      close_out oc)
    (to_csv f)
