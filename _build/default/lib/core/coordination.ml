type op =
  | Single of { txid : int; ops : Repro_ledger.Tx.op list }
  | Begin_tx of { txid : int; participants : int list }
  | Prepare_tx of { txid : int; ops : Repro_ledger.Tx.op list }
  | Vote of { txid : int; shard : int; ok : bool }
  | Commit_tx of { txid : int; ops : Repro_ledger.Tx.op list }
  | Abort_tx of { txid : int; ops : Repro_ledger.Tx.op list }

type registry = { mutable ops : op array; mutable len : int }

let create_registry () = { ops = Array.make 1024 (Vote { txid = -1; shard = -1; ok = false }); len = 0 }

let register r op =
  if r.len = Array.length r.ops then begin
    let bigger = Array.make (2 * r.len) op in
    Array.blit r.ops 0 bigger 0 r.len;
    r.ops <- bigger
  end;
  r.ops.(r.len) <- op;
  r.len <- r.len + 1;
  r.len - 1

let lookup r tag = if tag >= 0 && tag < r.len then Some r.ops.(tag) else None

let op_cost (costs : Repro_crypto.Cost_model.t) op =
  let per_op = costs.Repro_crypto.Cost_model.tx_execute in
  match op with
  | Single { ops; _ } -> float_of_int (List.length ops) *. per_op
  | Prepare_tx { ops; _ } | Commit_tx { ops; _ } | Abort_tx { ops; _ } ->
      (* Lock-tuple reads/writes double the state touches. *)
      2.0 *. float_of_int (List.length ops) *. per_op
  | Begin_tx _ | Vote _ -> per_op
