(** The operations that flow through committee consensus in the sharded
    blockchain, and the registry that maps a consensus request's [op_tag]
    to its operation.

    Single-shard transactions execute directly; a cross-shard transaction
    becomes a [Begin_tx] on the reference committee, one [Prepare_tx] per
    participant shard, [Vote]s back on R, and finally [Commit_tx] /
    [Abort_tx] on the participants (Figure 5). *)

type op =
  | Single of { txid : int; ops : Repro_ledger.Tx.op list }
  | Begin_tx of { txid : int; participants : int list }
  | Prepare_tx of { txid : int; ops : Repro_ledger.Tx.op list }
  | Vote of { txid : int; shard : int; ok : bool }
  | Commit_tx of { txid : int; ops : Repro_ledger.Tx.op list }
  | Abort_tx of { txid : int; ops : Repro_ledger.Tx.op list }

type registry

val create_registry : unit -> registry

val register : registry -> op -> int
(** Returns the [op_tag] to embed in the consensus request. *)

val lookup : registry -> int -> op option

val op_cost : Repro_crypto.Cost_model.t -> op -> float
(** Execution cost charged per replica when the operation runs: prepares
    and commits touch the lock tuples and state, begin/vote only the
    reference chaincode's bookkeeping. *)
