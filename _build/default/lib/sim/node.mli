(** Simulated node runtime: a serial CPU draining a bounded inbox.

    Each node processes one message at a time.  The handler runs at dequeue
    time and *charges* CPU cost for the work it performs (signature
    verification, log appends, execution...); the node stays busy for the
    charged duration before dequeuing the next message.  This serial-server
    model is what makes consensus throughput degrade with committee size:
    an O(N²) protocol makes every replica verify O(N) messages per block. *)

type 'msg t

val create :
  Engine.t ->
  id:int ->
  inbox_mode:Inbox.mode ->
  handler:('msg t -> 'msg -> unit) ->
  'msg t

val id : 'msg t -> int

val engine : 'msg t -> Engine.t

val charge : 'msg t -> float -> unit
(** Occupy the CPU for [cost] more seconds.  Valid both from within the
    message handler and from timer context (leader batching, watchdogs):
    the node's busy horizon is pushed forward either way, and queued
    messages wait for it. *)

val charged : 'msg t -> float
(** Remaining busy time from now — the departure offset for messages sent
    by work that was just charged. *)

val deliver : 'msg t -> Inbox.channel -> 'msg -> bool
(** Arrival of a message from the network at the current engine time.
    Returns [false] if the inbox dropped it.  Crashed nodes ignore (and
    count) everything. *)

val inbox_dropped : 'msg t -> Inbox.channel -> int

val inbox_length : 'msg t -> int

val crash : 'msg t -> unit
(** Stop processing and discard queued messages. *)

val recover : 'msg t -> unit

val is_crashed : 'msg t -> bool

val busy_fraction : 'msg t -> float
(** Fraction of elapsed virtual time this node spent processing; a load
    measure for identifying bottlenecks (e.g. the AHLR leader). *)
