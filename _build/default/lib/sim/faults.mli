(** Fault roster: which nodes are honest, crashed, or Byzantine.

    The paper's attack experiments (Figure 8 right, Figure 16 right) make
    Byzantine replicas send conflicting messages with different sequence
    numbers to different peers; consensus implementations consult this
    roster to decide whether to misbehave.  The adaptive-corruption model
    of Section 3.3 is expressed as a scheduled corruption that takes
    effect after a delay. *)

type behavior = Honest | Crashed | Byzantine

type t

val honest : int -> t
(** [honest n]: all of nodes [0 .. n-1] honest. *)

val with_byzantine : Repro_util.Rng.t -> n:int -> count:int -> t
(** [count] distinct nodes chosen uniformly at random are Byzantine. *)

val with_byzantine_ids : n:int -> ids:int list -> t

val behavior : t -> int -> behavior

val is_byzantine : t -> int -> bool

val is_crashed : t -> int -> bool

val byzantine_ids : t -> int list

val crash : t -> int -> unit

val corrupt : t -> int -> unit
(** Immediately mark a node Byzantine. *)

val corrupt_after : Engine.t -> t -> int -> delay:float -> unit
(** Adaptive attacker: the corruption of an honest node takes [delay]
    seconds to come into effect (Section 3.3). *)

val byzantine_count : t -> int

val size : t -> int
