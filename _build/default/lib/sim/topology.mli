(** Network topology: node placement, propagation latency, and bandwidth.

    Two families are provided, matching the paper's two testbeds:
    - [lan]: the in-house 100-server cluster (sub-millisecond latency,
      gigabit links);
    - [gcp n]: Google Cloud Platform with the first [n] of the 8 regions of
      Table 3 (measured inter-region round-trip latencies). *)

type t

val lan : ?latency_ms:float -> ?jitter:float -> ?bandwidth_mbps:float -> unit -> t
(** Single-region cluster.  [latency_ms] is the one-way propagation delay
    (default 0.3 ms), [jitter] a relative spread (default 0.1), and
    [bandwidth_mbps] the per-link rate (default 1000). *)

val constrained_lan : latency_ms:float -> bandwidth_mbps:float -> t
(** The PoET experiment setup (Appendix C.1): cluster links throttled to a
    given latency and bandwidth (the paper used 100 ms and 50 Mbps). *)

val gcp : int -> t
(** [gcp n] uses the first [n] regions of Table 3 ([1 <= n <= 8]); nodes
    are placed round-robin across regions.  WAN bandwidth defaults to
    100 Mbps per flow. *)

val name : t -> string

val regions : t -> int

val region_of_node : t -> int -> int
(** Round-robin placement of node ids onto regions. *)

val latency : t -> Repro_util.Rng.t -> src_region:int -> dst_region:int -> float
(** One-way propagation delay in seconds, jittered.  Intra-region delay is
    small but non-zero. *)

val transfer_time : t -> bytes:int -> float
(** Serialization time of a message of [bytes] on one link. *)

val gcp_region_names : string array
(** The 8 zone names of Table 3, in matrix order. *)

val gcp_latency_matrix_ms : float array array
(** Table 3: one-way(+) latencies in milliseconds between the 8 zones (the
    paper reports RTT-like values; we use them directly as one-way delays,
    which only rescales time uniformly). *)
