(** Experiment metric collection: commits, latencies, named counters, and
    a throughput time series. *)

type t

val create : Engine.t -> t

val create_with_bin : Engine.t -> bin:float -> t
(** Throughput series with the given bin width (default 1 s). *)

val commit : t -> count:int -> unit
(** Record [count] transactions committed at the current virtual time. *)

val commit_latency : t -> submitted:float -> unit
(** Record end-to-end latency of a transaction submitted at [submitted]
    and committed now. *)

val abort : t -> count:int -> unit

val incr : t -> string -> unit
(** Bump a named counter ([view_change], [stale_block], [drop]...). *)

val add_to : t -> string -> float -> unit
(** Accumulate into a named gauge (e.g. consensus vs execution seconds). *)

val committed : t -> int

val aborted : t -> int

val abort_rate : t -> float
(** aborted / (committed + aborted); 0 when nothing finished. *)

val counter : t -> string -> int

val gauge : t -> string -> float

val throughput : t -> warmup:float -> float
(** Committed transactions per second between [warmup] and the current
    virtual time. *)

val latency_stats : t -> Repro_util.Stats.t

val throughput_series : t -> (float * float) list
(** Per-bin commit rate over the run (Figure 12 right). *)
