lib/sim/node.ml: Engine Float Inbox
