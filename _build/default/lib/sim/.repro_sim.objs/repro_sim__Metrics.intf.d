lib/sim/metrics.mli: Engine Repro_util
