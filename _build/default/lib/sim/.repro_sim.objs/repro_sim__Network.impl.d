lib/sim/network.ml: Engine Hashtbl List Node Option Repro_util Rng Topology
