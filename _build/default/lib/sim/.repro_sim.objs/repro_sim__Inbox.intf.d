lib/sim/inbox.mli:
