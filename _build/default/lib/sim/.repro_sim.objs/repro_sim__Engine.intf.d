lib/sim/engine.mli: Repro_util
