lib/sim/topology.ml: Array Float Printf Repro_util Rng
