lib/sim/inbox.ml: Queue
