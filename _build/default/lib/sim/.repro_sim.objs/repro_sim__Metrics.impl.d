lib/sim/metrics.ml: Engine Hashtbl List Option Repro_util Stats
