lib/sim/faults.mli: Engine Repro_util
