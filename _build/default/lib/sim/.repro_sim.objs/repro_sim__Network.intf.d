lib/sim/network.mli: Engine Inbox Node Topology
