lib/sim/node.mli: Engine Inbox
