lib/sim/engine.ml: Float Heap Repro_util Rng
