lib/sim/faults.ml: Array Engine List Repro_util Rng
