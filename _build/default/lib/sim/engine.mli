(** Deterministic discrete-event simulation core.

    The engine owns a virtual clock and a priority queue of pending events.
    All distributed components (nodes, network links, clients, enclaves)
    advance exclusively by scheduling callbacks; wall-clock time never
    enters the simulation, so runs are reproducible from the seed alone. *)

type t

type cancel
(** Handle for a cancellable timer. *)

val create : seed:int64 -> t

val now : t -> float
(** Current virtual time in seconds. *)

val rng : t -> Repro_util.Rng.t
(** The engine's root random stream.  Components should derive their own
    child streams via [Rng.split_named] at construction time. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run the callback [delay] seconds from now ([delay >= 0]). *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Run the callback at absolute virtual [time] (clamped to now). *)

val timer : t -> delay:float -> (unit -> unit) -> cancel
(** Like [schedule] but cancellable. *)

val cancel : cancel -> unit
(** Cancelling a fired or already-cancelled timer is a no-op. *)

val cancelled : cancel -> bool

val run : t -> until:float -> unit
(** Process events in timestamp order until the clock would pass [until].
    Events scheduled beyond the horizon stay queued; the clock finishes at
    exactly [until]. *)

val run_until_idle : ?max_events:int -> t -> unit
(** Drain the queue completely (or until [max_events]); for unit tests. *)

val events_processed : t -> int

val pending : t -> int
