(** Bounded per-node message queues.

    Hyperledger v0.6 uses one shared network queue for client requests and
    consensus traffic; under load, request floods evict consensus messages
    and the protocol livelocks in view changes (Section 4.1).  AHL+'s
    optimization 1 splits the queue.  This module models both disciplines
    with explicit drop accounting so experiments can show the difference. *)

type channel = Request | Consensus

type mode =
  | Shared of int  (** one FIFO of the given capacity for both channels *)
  | Split of { request_cap : int; consensus_cap : int }
      (** two FIFOs; consensus has strict dequeue priority *)

type 'msg t

val create : mode -> 'msg t

val push : 'msg t -> channel -> 'msg -> bool
(** Enqueue; [false] means the message was tail-dropped because its queue
    was full. *)

val pop : 'msg t -> (channel * 'msg) option
(** In [Split] mode, consensus messages are served first. *)

val length : 'msg t -> int
(** Total queued messages across channels. *)

val dropped : 'msg t -> channel -> int
(** Cumulative drop count per channel. *)

val clear : 'msg t -> unit
(** Discard all queued messages (node crash). *)
