open Repro_util
open Repro_crypto
open Repro_sgx

(* A fresh world per test: keystore + clock + an enclave factory. *)
type world = {
  keystore : Keys.keystore;
  mutable clock : float;
  charged : float ref;
}

let make_world () =
  { keystore = Keys.create_keystore (Rng.create 77L); clock = 0.0; charged = ref 0.0 }

let make_enclave ?(id = 0) ?(measurement = "test-enclave") ?(costs = Cost_model.default) w =
  Enclave.create ~keystore:w.keystore ~id ~measurement ~rng:(Rng.create 5L) ~costs
    ~charge:(fun c -> w.charged := !(w.charged) +. c)
    ~now:(fun () -> w.clock)

(* ------------------------------------------------------------------ *)
(* Enclave                                                             *)
(* ------------------------------------------------------------------ *)

let test_enclave_sign_verify () =
  let w = make_world () in
  let e = make_enclave w in
  let s = Enclave.sign e ~msg_tag:99 in
  Alcotest.(check bool) "verifies" true (Enclave.verify e s ~msg_tag:99);
  Alcotest.(check bool) "wrong tag fails" false (Enclave.verify e s ~msg_tag:100)

let test_enclave_charges_costs () =
  let w = make_world () in
  let e = make_enclave w in
  ignore (Enclave.sign e ~msg_tag:1);
  let expected =
    Cost_model.default.Cost_model.ecdsa_sign +. Cost_model.default.Cost_model.enclave_switch
  in
  Alcotest.(check (float 1e-12)) "sign cost charged" expected !(w.charged)

let test_enclave_restart_bumps_generation () =
  let w = make_world () in
  let e = make_enclave w in
  Alcotest.(check int) "gen 0" 0 (Enclave.generation e);
  w.clock <- 10.0;
  Enclave.restart e;
  Alcotest.(check int) "gen 1" 1 (Enclave.generation e);
  Alcotest.(check (float 1e-9)) "instantiation time" 10.0 (Enclave.instantiated_at e)

let test_enclave_rand_host_independent () =
  (* Two invocation patterns by the host must not change the stream. *)
  let w1 = make_world () and w2 = make_world () in
  let e1 = make_enclave w1 and e2 = make_enclave w2 in
  let a = Enclave.read_rand64 e1 in
  let b = Enclave.read_rand64 e2 in
  Alcotest.(check int64) "same seed same stream" a b

(* ------------------------------------------------------------------ *)
(* Attestation                                                         *)
(* ------------------------------------------------------------------ *)

let test_attestation_roundtrip () =
  let w = make_world () in
  let e = make_enclave w in
  let q = Attestation.quote e in
  Alcotest.(check bool) "verifies" true
    (Attestation.verify w.keystore ~expected_measurement:(Enclave.measurement e) q)

let test_attestation_rejects_wrong_measurement () =
  let w = make_world () in
  let e = make_enclave w in
  let q = Attestation.quote e in
  let other = Sha256.digest_string "different-binary" in
  Alcotest.(check bool) "measurement mismatch" false
    (Attestation.verify w.keystore ~expected_measurement:other q)

let test_attestation_rejects_identity_swap () =
  let w = make_world () in
  let e0 = make_enclave ~id:0 w in
  let _e1 = make_enclave ~id:1 ~measurement:"test-enclave" w in
  let q = Attestation.quote e0 in
  let forged = { q with Attestation.enclave_id = 1 } in
  Alcotest.(check bool) "claimed wrong id" false
    (Attestation.verify w.keystore ~expected_measurement:(Enclave.measurement e0) forged)

(* ------------------------------------------------------------------ *)
(* Sealing                                                             *)
(* ------------------------------------------------------------------ *)

let test_sealing_roundtrip () =
  let w = make_world () in
  let e = make_enclave w in
  let blob = Sealing.seal e (42, "state") in
  Alcotest.(check bool) "unseals" true (Sealing.unseal e blob = Some (42, "state"))

let test_sealing_rejects_foreign_enclave () =
  let w = make_world () in
  let e0 = make_enclave ~id:0 w in
  let e1 = make_enclave ~id:1 w in
  let blob = Sealing.seal e0 "secret" in
  Alcotest.(check bool) "foreign enclave cannot unseal" true (Sealing.unseal e1 blob = None)

let test_sealing_rejects_tampering () =
  let w = make_world () in
  let e = make_enclave w in
  let blob = Sealing.seal e "original" in
  let tampered = Sealing.tamper blob "modified" in
  Alcotest.(check bool) "tampered rejected" true (Sealing.unseal e tampered = None)

let test_sealing_replay_is_possible () =
  (* Sealing does NOT protect against rollback: an old blob still unseals.
     This is the attack surface Appendix A closes at the protocol level. *)
  let w = make_world () in
  let e = make_enclave w in
  let v1 = Sealing.seal e 1 in
  let _v2 = Sealing.seal e 2 in
  Alcotest.(check bool) "stale blob accepted by sealing" true (Sealing.unseal e v1 = Some 1)

(* ------------------------------------------------------------------ *)
(* Monotonic counter                                                   *)
(* ------------------------------------------------------------------ *)

let test_mono_counter () =
  let c = Mono_counter.create () in
  Alcotest.(check int) "starts 0" 0 (Mono_counter.read c);
  Alcotest.(check int) "inc" 1 (Mono_counter.increment c);
  Alcotest.(check int) "inc again" 2 (Mono_counter.increment c);
  Alcotest.(check int) "read" 2 (Mono_counter.read c)

(* ------------------------------------------------------------------ *)
(* A2M                                                                 *)
(* ------------------------------------------------------------------ *)

let make_a2m ?(window = 100) w = A2m.create (make_enclave w) ~watermark_window:window

let test_a2m_append_and_verify () =
  let w = make_world () in
  let a2m = make_a2m w in
  match A2m.append a2m ~log:1 ~slot:1 ~digest_tag:42 with
  | None -> Alcotest.fail "append refused"
  | Some proof ->
      Alcotest.(check bool) "proof verifies" true (A2m.verify w.keystore proof);
      Alcotest.(check bool) "lookup" true (A2m.lookup a2m ~log:1 ~slot:1 = Some 42)

let test_a2m_refuses_equivocation () =
  let w = make_world () in
  let a2m = make_a2m w in
  ignore (A2m.append a2m ~log:1 ~slot:1 ~digest_tag:42);
  Alcotest.(check bool) "conflicting digest refused" true
    (A2m.append a2m ~log:1 ~slot:1 ~digest_tag:43 = None);
  Alcotest.(check bool) "same digest re-attested" true
    (A2m.append a2m ~log:1 ~slot:1 ~digest_tag:42 <> None)

let test_a2m_logs_are_independent () =
  let w = make_world () in
  let a2m = make_a2m w in
  ignore (A2m.append a2m ~log:1 ~slot:1 ~digest_tag:42);
  Alcotest.(check bool) "other log same slot fine" true
    (A2m.append a2m ~log:2 ~slot:1 ~digest_tag:43 <> None)

let test_a2m_proof_forgery_fails () =
  let w = make_world () in
  let a2m = make_a2m w in
  match A2m.append a2m ~log:1 ~slot:1 ~digest_tag:42 with
  | None -> Alcotest.fail "append refused"
  | Some proof ->
      let forged = { proof with A2m.digest_tag = 43 } in
      Alcotest.(check bool) "altered digest fails" false (A2m.verify w.keystore forged);
      let resloted = { proof with A2m.slot = 2 } in
      Alcotest.(check bool) "altered slot fails" false (A2m.verify w.keystore resloted)

let test_a2m_truncate () =
  let w = make_world () in
  let a2m = make_a2m w in
  ignore (A2m.append a2m ~log:1 ~slot:1 ~digest_tag:1);
  ignore (A2m.append a2m ~log:1 ~slot:10 ~digest_tag:10);
  A2m.truncate_below a2m ~slot:5;
  Alcotest.(check bool) "old gone" true (A2m.lookup a2m ~log:1 ~slot:1 = None);
  Alcotest.(check bool) "new kept" true (A2m.lookup a2m ~log:1 ~slot:10 = Some 10)

let test_a2m_rollback_attack_blocked () =
  (* The Appendix A scenario: restart with a stale seal and try to
     re-attest a forgotten slot with a different value. *)
  let w = make_world () in
  let a2m = make_a2m ~window:50 w in
  ignore (A2m.append a2m ~log:1 ~slot:1 ~digest_tag:1);
  let stale = A2m.seal_state a2m in
  ignore (A2m.append a2m ~log:1 ~slot:2 ~digest_tag:2);
  A2m.restart a2m ~resume_with:(Some stale);
  Alcotest.(check bool) "recovering" true (A2m.is_recovering a2m);
  Alcotest.(check bool) "appends refused during recovery" true
    (A2m.append a2m ~log:1 ~slot:2 ~digest_tag:999 = None)

let test_a2m_recovery_hm_estimation () =
  let w = make_world () in
  let a2m = make_a2m ~window:50 w in
  A2m.restart a2m ~resume_with:None;
  Alcotest.(check bool) "needs f+1 answers" true (A2m.estimate_hm a2m ~f:2 = None);
  A2m.record_peer_checkpoint a2m ~peer:1 ~ckp:30;
  A2m.record_peer_checkpoint a2m ~peer:2 ~ckp:10;
  Alcotest.(check bool) "two answers insufficient for f=2" true (A2m.estimate_hm a2m ~f:2 = None);
  A2m.record_peer_checkpoint a2m ~peer:3 ~ckp:20;
  (* ckpM = 3rd smallest of {10, 20, 30} = 30; HM = 30 + 50. *)
  Alcotest.(check (option int)) "HM = ckpM + L" (Some 80) (A2m.estimate_hm a2m ~f:2)

let test_a2m_recovery_gate () =
  let w = make_world () in
  let a2m = make_a2m ~window:50 w in
  A2m.restart a2m ~resume_with:None;
  List.iteri (fun i ckp -> A2m.record_peer_checkpoint a2m ~peer:(i + 1) ~ckp) [ 10; 10; 10 ];
  Alcotest.(check bool) "below HM rejected" false
    (A2m.finish_recovery a2m ~f:2 ~stable_checkpoint:59);
  Alcotest.(check bool) "still recovering" true (A2m.is_recovering a2m);
  Alcotest.(check bool) "at HM accepted" true (A2m.finish_recovery a2m ~f:2 ~stable_checkpoint:60);
  Alcotest.(check bool) "appends resume" true (A2m.append a2m ~log:0 ~slot:100 ~digest_tag:5 <> None)

let test_a2m_recovery_duplicate_peer_updates () =
  let w = make_world () in
  let a2m = make_a2m ~window:10 w in
  A2m.restart a2m ~resume_with:None;
  A2m.record_peer_checkpoint a2m ~peer:1 ~ckp:5;
  A2m.record_peer_checkpoint a2m ~peer:1 ~ckp:50;
  A2m.record_peer_checkpoint a2m ~peer:2 ~ckp:7;
  (* f = 1: need 2 answers from distinct peers; peer 1 counts once (latest). *)
  Alcotest.(check (option int)) "dedup by peer" (Some 60) (A2m.estimate_hm a2m ~f:1)

let test_a2m_foreign_seal_starts_empty () =
  (* A snapshot sealed by a different enclave identity must be rejected,
     leaving the restarted enclave with empty logs. *)
  let w = make_world () in
  let a2m = make_a2m w in
  ignore (A2m.append a2m ~log:1 ~slot:3 ~digest_tag:33);
  let other = A2m.create (make_enclave ~id:9 w) ~watermark_window:100 in
  ignore (A2m.append other ~log:1 ~slot:3 ~digest_tag:99);
  let foreign = A2m.seal_state other in
  A2m.restart a2m ~resume_with:(Some foreign);
  Alcotest.(check bool) "foreign snapshot ignored" true (A2m.lookup a2m ~log:1 ~slot:3 = None)

(* ------------------------------------------------------------------ *)
(* Beacon                                                              *)
(* ------------------------------------------------------------------ *)

let make_beacon ?(l_bits = 0) ?(delta = 2.0) w =
  Beacon.create (make_enclave w) (Mono_counter.create ()) ~l_bits ~delta

let test_beacon_emits_certificate () =
  let w = make_world () in
  let b = make_beacon w in
  match Beacon.invoke b ~epoch:1 with
  | Beacon.Cert c ->
      Alcotest.(check int) "epoch" 1 c.Beacon.epoch;
      Alcotest.(check bool) "verifies" true (Beacon.verify w.keystore c)
  | _ -> Alcotest.fail "l=0 should always produce a certificate"

let test_beacon_once_per_epoch () =
  let w = make_world () in
  let b = make_beacon w in
  ignore (Beacon.invoke b ~epoch:1);
  Alcotest.(check bool) "second invocation refused" true
    (Beacon.invoke b ~epoch:1 = Beacon.Already_invoked);
  (match Beacon.invoke b ~epoch:2 with
  | Beacon.Cert _ -> ()
  | _ -> Alcotest.fail "new epoch should work")

let test_beacon_restart_guard () =
  let w = make_world () in
  let b = make_beacon ~delta:5.0 w in
  ignore (Beacon.invoke b ~epoch:1);
  w.clock <- 10.0;
  Beacon.restart b;
  w.clock <- 12.0;
  (* Less than delta since restart: the replay window is closed. *)
  Alcotest.(check bool) "guard active" true (Beacon.invoke b ~epoch:1 = Beacon.Guard_active);
  w.clock <- 16.0;
  (match Beacon.invoke b ~epoch:2 with
  | Beacon.Cert _ -> ()
  | _ -> Alcotest.fail "after delta the beacon serves again")

let test_beacon_genesis_monotonic_counter () =
  let w = make_world () in
  let b = make_beacon ~delta:1.0 w in
  ignore (Beacon.invoke b ~epoch:0);
  Beacon.restart b;
  w.clock <- 100.0;
  Alcotest.(check bool) "genesis replay detected" true
    (Beacon.invoke b ~epoch:0 = Beacon.Genesis_replayed)

let test_beacon_unlucky_with_large_l () =
  let w = make_world () in
  let b = make_beacon ~l_bits:30 w in
  (* With q of 30 bits the chance of a cert is ~1e-9. *)
  match Beacon.invoke b ~epoch:1 with
  | Beacon.Unlucky -> ()
  | Beacon.Cert _ -> Alcotest.fail "astronomically unlikely"
  | _ -> Alcotest.fail "unexpected outcome"

let test_beacon_repeat_probability_math () =
  Alcotest.(check (float 1e-12)) "l=0 never repeats" 0.0
    (Beacon.repeat_probability ~l_bits:0 ~n:16);
  let p = Beacon.repeat_probability ~l_bits:4 ~n:16 in
  Alcotest.(check (float 1e-9)) "analytic" (Float.pow (1.0 -. (1.0 /. 16.0)) 16.0) p;
  Alcotest.(check (float 1e-9)) "expected certs" 1.0 (Beacon.expected_certs ~l_bits:4 ~n:16)

(* ------------------------------------------------------------------ *)
(* Aggregator                                                          *)
(* ------------------------------------------------------------------ *)

let votes_for w ~stmt_tag ids =
  List.map
    (fun id ->
      let e = make_enclave ~id w in
      ignore (Enclave.measurement e);
      Enclave.sign_free e ~msg_tag:stmt_tag)
    ids

let test_aggregator_quorum () =
  let w = make_world () in
  let leader = make_enclave ~id:100 w in
  let stmt_tag = 4242 in
  let votes = votes_for w ~stmt_tag [ 0; 1; 2 ] in
  match Aggregator.aggregate leader ~f:2 ~stmt_tag ~votes with
  | None -> Alcotest.fail "3 votes should reach f+1 = 3"
  | Some proof ->
      Alcotest.(check bool) "verifies" true (Aggregator.verify w.keystore ~f:2 proof);
      Alcotest.(check int) "voters" 3 (List.length proof.Aggregator.voters)

let test_aggregator_insufficient_votes () =
  let w = make_world () in
  let leader = make_enclave ~id:100 w in
  let stmt_tag = 1 in
  let votes = votes_for w ~stmt_tag [ 0; 1 ] in
  Alcotest.(check bool) "2 < f+1 = 3" true (Aggregator.aggregate leader ~f:2 ~stmt_tag ~votes = None)

let test_aggregator_dedups_signers () =
  let w = make_world () in
  let leader = make_enclave ~id:100 w in
  let stmt_tag = 7 in
  let e0 = make_enclave ~id:0 w in
  let v = Enclave.sign_free e0 ~msg_tag:stmt_tag in
  Alcotest.(check bool) "same signer thrice is one vote" true
    (Aggregator.aggregate leader ~f:2 ~stmt_tag ~votes:[ v; v; v ] = None)

let test_aggregator_rejects_wrong_statement () =
  let w = make_world () in
  let leader = make_enclave ~id:100 w in
  let votes = votes_for w ~stmt_tag:1 [ 0; 1; 2 ] in
  Alcotest.(check bool) "votes for another statement" true
    (Aggregator.aggregate leader ~f:2 ~stmt_tag:2 ~votes = None)

let test_aggregator_proof_not_transferable () =
  let w = make_world () in
  let leader = make_enclave ~id:100 w in
  let stmt_tag = 11 in
  let votes = votes_for w ~stmt_tag [ 0; 1; 2 ] in
  match Aggregator.aggregate leader ~f:2 ~stmt_tag ~votes with
  | None -> Alcotest.fail "should aggregate"
  | Some proof ->
      let forged = { proof with Aggregator.stmt_tag = 12 } in
      Alcotest.(check bool) "restamped statement fails" false
        (Aggregator.verify w.keystore ~f:2 forged)

(* ------------------------------------------------------------------ *)
(* PoET enclave                                                        *)
(* ------------------------------------------------------------------ *)

let test_poet_wait_memoized () =
  let w = make_world () in
  let p = Poet_enclave.create (make_enclave w) in
  let w1 = Poet_enclave.draw_wait p ~height:1 ~mean_wait:10.0 in
  let w2 = Poet_enclave.draw_wait p ~height:1 ~mean_wait:10.0 in
  Alcotest.(check (float 0.0)) "host cannot redraw" w1 w2

let test_poet_certificate_only_after_wait () =
  let w = make_world () in
  let p = Poet_enclave.create (make_enclave w) in
  let wait = Poet_enclave.draw_wait p ~height:1 ~mean_wait:10.0 in
  Alcotest.(check bool) "early cert refused" true
    (Poet_enclave.certificate p ~height:1 ~l_bits:0 ~now:(wait /. 2.0) = None);
  match Poet_enclave.certificate p ~height:1 ~l_bits:0 ~now:(wait +. 0.01) with
  | Some cert ->
      Alcotest.(check bool) "verifies" true (Poet_enclave.verify w.keystore cert);
      Alcotest.(check bool) "lucky (plain PoET)" true cert.Poet_enclave.lucky
  | None -> Alcotest.fail "expired wait should yield a certificate"

let test_poet_wins_ordering () =
  let w = make_world () in
  let mk node wait lucky =
    let e = make_enclave ~id:node w in
    {
      Poet_enclave.node;
      height = 1;
      wait;
      lucky;
      signature = Enclave.sign_free e ~msg_tag:0;
    }
  in
  let a = mk 0 1.0 true and b = mk 1 2.0 true and c = mk 2 0.5 false in
  Alcotest.(check bool) "shorter wait wins" true (Poet_enclave.wins a b);
  Alcotest.(check bool) "longer loses" false (Poet_enclave.wins b a);
  Alcotest.(check bool) "unlucky never wins" false (Poet_enclave.wins c a);
  Alcotest.(check bool) "lucky beats unlucky" true (Poet_enclave.wins a c)

let test_a2m_highest_attested () =
  let w = make_world () in
  let a2m = make_a2m w in
  Alcotest.(check int) "empty" (-1) (A2m.highest_attested a2m);
  ignore (A2m.append a2m ~log:0 ~slot:4 ~digest_tag:1);
  ignore (A2m.append a2m ~log:1 ~slot:9 ~digest_tag:1);
  Alcotest.(check int) "max slot across logs" 9 (A2m.highest_attested a2m)

let test_attestation_charges_cost () =
  let w = make_world () in
  let e = make_enclave w in
  w.charged := 0.0;
  ignore (Attestation.quote e);
  Alcotest.(check bool) "~2ms charged" true (!(w.charged) >= 2e-3)

let test_beacon_cert_binds_epoch () =
  let w = make_world () in
  let b = make_beacon w in
  match Beacon.invoke b ~epoch:5 with
  | Beacon.Cert c ->
      let forged = { c with Beacon.epoch = 6 } in
      Alcotest.(check bool) "re-stamped epoch fails" false (Beacon.verify w.keystore forged)
  | _ -> Alcotest.fail "expected cert"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_a2m_no_two_digests_per_slot =
  QCheck.Test.make ~name:"a2m: at most one digest is ever attested per slot" ~count:100
    QCheck.(list (pair (int_bound 10) (int_bound 5)))
    (fun appends ->
      let w = make_world () in
      let a2m = make_a2m w in
      let first : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
      List.for_all
        (fun (slot, digest) ->
          match A2m.append a2m ~log:0 ~slot ~digest_tag:digest with
          | Some _ -> (
              match Hashtbl.find_opt first (0, slot) with
              | None ->
                  Hashtbl.replace first (0, slot) digest;
                  true
              | Some d -> d = digest)
          | None -> Hashtbl.find_opt first (0, slot) <> Some digest || false)
        appends)

let prop_beacon_epochs_independent =
  QCheck.Test.make ~name:"beacon: distinct epochs give distinct rnd" ~count:50
    QCheck.(int_range 1 100)
    (fun e ->
      let w = make_world () in
      let b = make_beacon w in
      match (Beacon.invoke b ~epoch:e, Beacon.invoke b ~epoch:(e + 1)) with
      | Beacon.Cert a, Beacon.Cert c -> a.Beacon.rnd <> c.Beacon.rnd
      | _ -> false)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_a2m_no_two_digests_per_slot; prop_beacon_epochs_independent ]

let () =
  Alcotest.run "sgx"
    [
      ( "enclave",
        [
          Alcotest.test_case "sign/verify" `Quick test_enclave_sign_verify;
          Alcotest.test_case "cost charging" `Quick test_enclave_charges_costs;
          Alcotest.test_case "restart generation" `Quick test_enclave_restart_bumps_generation;
          Alcotest.test_case "rand host-independent" `Quick test_enclave_rand_host_independent;
        ] );
      ( "attestation",
        [
          Alcotest.test_case "roundtrip" `Quick test_attestation_roundtrip;
          Alcotest.test_case "wrong measurement" `Quick test_attestation_rejects_wrong_measurement;
          Alcotest.test_case "identity swap" `Quick test_attestation_rejects_identity_swap;
          Alcotest.test_case "cost charged" `Quick test_attestation_charges_cost;
        ] );
      ( "sealing",
        [
          Alcotest.test_case "roundtrip" `Quick test_sealing_roundtrip;
          Alcotest.test_case "foreign enclave" `Quick test_sealing_rejects_foreign_enclave;
          Alcotest.test_case "tampering" `Quick test_sealing_rejects_tampering;
          Alcotest.test_case "replay possible (rollback surface)" `Quick
            test_sealing_replay_is_possible;
        ] );
      ("mono_counter", [ Alcotest.test_case "monotone" `Quick test_mono_counter ]);
      ( "a2m",
        [
          Alcotest.test_case "append and verify" `Quick test_a2m_append_and_verify;
          Alcotest.test_case "refuses equivocation" `Quick test_a2m_refuses_equivocation;
          Alcotest.test_case "independent logs" `Quick test_a2m_logs_are_independent;
          Alcotest.test_case "proof forgery" `Quick test_a2m_proof_forgery_fails;
          Alcotest.test_case "truncate" `Quick test_a2m_truncate;
          Alcotest.test_case "rollback blocked" `Quick test_a2m_rollback_attack_blocked;
          Alcotest.test_case "HM estimation" `Quick test_a2m_recovery_hm_estimation;
          Alcotest.test_case "recovery gate" `Quick test_a2m_recovery_gate;
          Alcotest.test_case "duplicate peers" `Quick test_a2m_recovery_duplicate_peer_updates;
          Alcotest.test_case "foreign seal" `Quick test_a2m_foreign_seal_starts_empty;
          Alcotest.test_case "highest attested" `Quick test_a2m_highest_attested;
        ] );
      ( "beacon",
        [
          Alcotest.test_case "emits certificate" `Quick test_beacon_emits_certificate;
          Alcotest.test_case "once per epoch" `Quick test_beacon_once_per_epoch;
          Alcotest.test_case "restart guard" `Quick test_beacon_restart_guard;
          Alcotest.test_case "genesis counter" `Quick test_beacon_genesis_monotonic_counter;
          Alcotest.test_case "unlucky large l" `Quick test_beacon_unlucky_with_large_l;
          Alcotest.test_case "repeat probability" `Quick test_beacon_repeat_probability_math;
          Alcotest.test_case "cert binds epoch" `Quick test_beacon_cert_binds_epoch;
        ] );
      ( "aggregator",
        [
          Alcotest.test_case "quorum" `Quick test_aggregator_quorum;
          Alcotest.test_case "insufficient votes" `Quick test_aggregator_insufficient_votes;
          Alcotest.test_case "dedups signers" `Quick test_aggregator_dedups_signers;
          Alcotest.test_case "wrong statement" `Quick test_aggregator_rejects_wrong_statement;
          Alcotest.test_case "proof not transferable" `Quick test_aggregator_proof_not_transferable;
        ] );
      ( "poet_enclave",
        [
          Alcotest.test_case "wait memoized" `Quick test_poet_wait_memoized;
          Alcotest.test_case "cert after wait" `Quick test_poet_certificate_only_after_wait;
          Alcotest.test_case "wins ordering" `Quick test_poet_wins_ordering;
        ] );
      ("properties", qsuite);
    ]
