test/test_sim.ml: Alcotest Array Engine Faults Gen Inbox List Metrics Network Node Printf QCheck QCheck_alcotest Repro_sim Repro_util Rng Topology
