test/test_core.ml: Alcotest Array Block Coordination Executor Fun List Printf Repro_core Repro_crypto Repro_ledger Repro_shard Repro_sim Repro_util Results Rng Smallbank_cc Stats System Tx Workload
