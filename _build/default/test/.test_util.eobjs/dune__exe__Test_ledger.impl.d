test/test_ledger.ml: Alcotest Array Block Chaincode Contract Executor Fun Gen Kvstore_cc List Locks QCheck QCheck_alcotest Repro_crypto Repro_ledger Result Smallbank_cc State Tx Utxo
