test/test_util.ml: Alcotest Array Float Fun Gen Heap List Logspace QCheck QCheck_alcotest Repro_util Rng Stats String Table Zipf
