test/test_crypto.ml: Alcotest Array Char Cost_model Fun Gen Keys List Merkle Printf QCheck QCheck_alcotest Repro_crypto Repro_util Rng Sha256 String
