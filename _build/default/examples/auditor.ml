(* A light-client auditor: verify that a payment is on a shard's chain
   without replaying the ledger.

   The consortium's auditors (running example, §3.1) hold only block
   headers.  Given a transaction and a Merkle inclusion proof from any
   committee member, they check (1) the proof against the block's tx root
   and (2) the block's place in the hash chain — a Byzantine member cannot
   fabricate either.

   Run with:  dune exec examples/auditor.exe *)

open Repro_crypto
open Repro_ledger

let () =
  (* A shard's chain as its committee maintains it. *)
  let state = State.create () in
  Executor.set_balance state "alice" 100;
  let chain = Block.Chain.create ~state_root:(State.root state) in

  (* Three blocks of real (serialized, SHA-256-addressable) transactions. *)
  let mk_tx txid ops = Tx.make ~txid ops in
  let blocks_of_txs =
    [
      [ mk_tx 1 [ Tx.Debit { account = "alice"; amount = 30 }; Tx.Credit { account = "bob"; amount = 30 } ] ];
      [
        mk_tx 2 [ Tx.Put { key = "audit_note"; value = "q3-settlement" } ];
        mk_tx 3 [ Tx.Debit { account = "bob"; amount = 5 }; Tx.Credit { account = "carol"; amount = 5 } ];
      ];
      [ mk_tx 4 [ Tx.Credit { account = "alice"; amount = 1 } ] ];
    ]
  in
  let appended =
    List.map
      (fun txs ->
        List.iter (fun tx -> ignore (Executor.execute_single state ~txid:tx.Tx.txid tx.Tx.ops)) txs;
        let body = List.map Tx.serialize txs in
        (Block.Chain.append chain ~txs:body ~state_root:(State.root state) ~timestamp:0.0, txs))
      blocks_of_txs
  in
  Printf.printf "chain height: %d, full validation: %b\n" (Block.Chain.height chain)
    (Block.Chain.validate chain);

  (* The auditor wants evidence that tx 3 (bob -> carol) settled. *)
  let block, txs = List.nth appended 1 in
  let target = List.nth txs 1 in
  let proof = Block.tx_proof block 1 in
  let presented = Tx.serialize target in
  Printf.printf "auditing tx %d (digest %s...)\n" target.Tx.txid
    (String.sub (Sha256.to_hex (Tx.digest target)) 0 16);
  Printf.printf "  inclusion proof verifies: %b\n" (Block.verify_tx block ~tx:presented proof);

  (* A forged variant of the same transaction fails the same check. *)
  let forged =
    Tx.serialize
      (mk_tx 3 [ Tx.Debit { account = "bob"; amount = 5 }; Tx.Credit { account = "mallory"; amount = 5 } ])
  in
  Printf.printf "  forged variant verifies:  %b\n" (Block.verify_tx block ~tx:forged proof);

  (* And a tampered block body breaks the chain links the auditor holds. *)
  let tampered = { block with Block.txs = forged :: List.tl block.Block.txs } in
  let parent, _ = List.nth appended 0 in
  Printf.printf "  tampered block keeps its chain link: %b\n"
    (Block.verify_link ~parent ~child:tampered);
  print_endline "auditor done: inclusion + integrity checks behave as expected"
