(* Supply-chain provenance on the sharded ledger (the paper's "beyond
   cryptocurrency" claim, Section 1): each item's custody record is a
   key-value tuple; hand-offs update the records of both parties plus the
   item — a 3-argument transaction that is almost always cross-shard
   (Appendix B).

   Run with:  dune exec examples/supply_chain.exe *)

open Repro_util
open Repro_ledger
open Repro_core

let shards = 6

let () =
  let sys = System.create (System.default_config ~shards ~committee_size:3) in
  (* Participants: manufacturers, carriers, retailers. *)
  let parties = [ "acme-factory"; "blue-freight"; "cargo-air"; "dock-7"; "east-retail" ] in
  List.iter
    (fun p ->
      let shard = Tx.shard_of_key ~shards ("inv_" ^ p) in
      Executor.set_balance (System.shard_state sys shard) ("inv_" ^ p) 0)
    parties;

  (* A hand-off of item [i] from [a] to [b]: the item's custody tuple is
     rewritten and both parties' inventory counters move atomically.
     Hand-offs over busy parties conflict on the inventory locks (2PL), so
     the client retries aborted transfers — the standard idiom. *)
  let next_txid = ref 0 in
  let committed = ref 0 and attempts = ref 0 in
  let retry_rng = Rng.create 7L in
  (* Concurrent hand-offs over the same inventory accounts fracture each
     other's lock sets (each grabs some shards' locks, nobody gets all),
     so retries use randomized backoff — the standard 2PL client idiom. *)
  let rec handoff ?(tries = 20) ~item ~from_ ~to_ ~next () =
    incr next_txid;
    incr attempts;
    let ops =
      [
        Tx.Put { key = "item_" ^ item; value = "held-by:" ^ to_ };
        Tx.Debit { account = "inv_" ^ from_; amount = 1 };
        Tx.Credit { account = "inv_" ^ to_; amount = 1 };
      ]
    in
    let tx = Tx.make ~txid:!next_txid ops in
    System.submit sys
      ~on_done:(fun o ->
        match o with
        | System.Committed ->
            incr committed;
            next ()
        | System.Aborted when tries > 0 ->
            Repro_sim.Engine.schedule (System.engine sys)
              ~delay:(Rng.float retry_rng 2.0)
              (handoff ~tries:(tries - 1) ~item ~from_ ~to_ ~next)
        | System.Aborted -> ())
      tx
  in

  (* Manufacture 20 items at the factory... *)
  let rng = Rng.create 123L in
  for i = 0 to 19 do
    let item = Printf.sprintf "pallet-%03d" i in
    let shard = Tx.shard_of_key ~shards ("item_" ^ item) in
    State.put (System.shard_state sys shard) ("item_" ^ item) "held-by:acme-factory";
    Executor.set_balance
      (System.shard_state sys (Tx.shard_of_key ~shards "inv_acme-factory"))
      "inv_acme-factory"
      (i + 1)
  done;

  (* ...then route each through a random chain of custody; each item's
     second hop starts only when its first commits. *)
  for i = 0 to 19 do
    let item = Printf.sprintf "pallet-%03d" i in
    let route = [| "acme-factory"; List.nth parties (1 + Rng.int rng 3); "east-retail" |] in
    let rec hop k () =
      if k + 1 < Array.length route then
        handoff ~item ~from_:route.(k) ~to_:route.(k + 1) ~next:(hop (k + 1)) ()
    in
    (* Stagger departures from the factory. *)
    Repro_sim.Engine.schedule (System.engine sys) ~delay:(Rng.float rng 5.0) (hop 0)
  done;
  System.run sys ~until:60.0;

  Printf.printf "hand-offs: %d committed out of %d attempts (aborts were lock conflicts, retried)\n"
    !committed !attempts;
  Printf.printf "throughput: %.0f hand-offs/s\n" (System.throughput sys ~warmup:2.0);

  (* Provenance query: where is pallet-007 and who holds inventory? *)
  let item_key = "item_pallet-007" in
  let shard = Tx.shard_of_key ~shards item_key in
  Printf.printf "pallet-007 custody record (shard %d): %s\n" shard
    (Option.value (State.get_data (System.shard_state sys shard) item_key) ~default:"<missing>");
  List.iter
    (fun p ->
      let key = "inv_" ^ p in
      let shard = Tx.shard_of_key ~shards key in
      Printf.printf "  %-14s inventory: %d\n" p
        (Executor.balance (System.shard_state sys shard) key))
    parties;
  (* Inventory is conserved across all shards: every debit matched a
     credit even though they executed on different committees. *)
  let total =
    List.fold_left
      (fun acc p ->
        let key = "inv_" ^ p in
        acc + Executor.balance (System.shard_state sys (Tx.shard_of_key ~shards key)) key)
      0 parties
  in
  Printf.printf "total items in custody: %d (conserved: %b)\n" total (total = 20)
