(* Quickstart: build a 4-shard AHL+ blockchain, move money across shards,
   and read the results back — the 60-second tour of the public API.

   Run with:  dune exec examples/quickstart.exe *)

open Repro_ledger
open Repro_core

let () =
  (* 1. A sharded system: 4 shards of 3 replicas each (f = 1 per shard
        under the TEE-assisted 2f+1 rule) plus a reference committee. *)
  let sys = System.create (System.default_config ~shards:4 ~committee_size:3) in
  Printf.printf "system: %d shards, committee size %d, AHL+ consensus\n"
    (System.shards sys) (System.committee_size sys);

  (* 2. Create two accounts.  Keys are hash-partitioned, so alice and bob
        usually land in different shards. *)
  let shard_of key = Tx.shard_of_key ~shards:(System.shards sys) key in
  Executor.set_balance (System.shard_state sys (shard_of "alice")) "alice" 100;
  Executor.set_balance (System.shard_state sys (shard_of "bob")) "bob" 20;
  Printf.printf "alice lives in shard %d, bob in shard %d\n" (shard_of "alice") (shard_of "bob");

  (* 3. Submit a transfer.  If it spans shards, the system runs 2PC with
        the BFT reference committee as coordinator (Figure 5 of the
        paper); otherwise it executes directly on one committee. *)
  let tx =
    Tx.make ~txid:1
      [ Tx.Debit { account = "alice"; amount = 30 }; Tx.Credit { account = "bob"; amount = 30 } ]
  in
  Printf.printf "transaction touches shards [%s]%s\n"
    (String.concat "; " (List.map string_of_int (Tx.shards_touched ~shards:4 tx)))
    (if Tx.is_cross_shard ~shards:4 tx then " -> distributed transaction" else "");
  System.submit sys
    ~on_done:(fun outcome ->
      Printf.printf "outcome: %s\n"
        (match outcome with System.Committed -> "COMMITTED" | System.Aborted -> "ABORTED"))
    tx;

  (* 4. Run the simulated network until the protocol completes. *)
  System.run sys ~until:10.0;

  (* 5. The same transfer, written once as a typed contract (the §6.4
        extension): the library derives the coordinator ops and the
        sharded prepare/commit/abort chaincode from one definition. *)
  let send_payment =
    Contract.define ~name:"sendPayment" ~arity:3
      [
        Contract.Transfer
          { from_ = Contract.Param 0; to_ = Contract.Param 1; amount = Contract.Amount_param 2 };
      ]
  in
  (match Contract.compile send_payment ~args:[ "bob"; "alice"; "5" ] with
  | Ok ops ->
      System.submit sys
        ~on_done:(fun o ->
          Printf.printf "contract transfer: %s\n"
            (match o with System.Committed -> "COMMITTED" | System.Aborted -> "ABORTED"))
        (Tx.make ~txid:2 ops)
  | Error e -> prerr_endline e);
  System.run sys ~until:20.0;

  (* 6. Read the world state and verify the per-shard hash chains. *)
  Printf.printf "alice: %d, bob: %d\n"
    (Executor.balance (System.shard_state sys (shard_of "alice")) "alice")
    (Executor.balance (System.shard_state sys (shard_of "bob")) "bob");
  for s = 0 to System.shards sys - 1 do
    let chain = System.shard_chain sys s in
    Printf.printf "shard %d: chain height %d, integrity %s\n" s
      (Block.Chain.height chain)
      (if Block.Chain.validate chain then "OK" else "BROKEN")
  done
