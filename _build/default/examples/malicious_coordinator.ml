(* The Section 6 liveness story, demonstrated head to head.

   A malicious client submits a cross-shard payment and vanishes after the
   locks are taken:

   - in OmniLedger-style client-driven coordination, the payer's funds are
     locked forever (indefinite blocking);
   - with the paper's BFT reference committee, R's nodes finish the 2PC
     themselves: the transaction terminates and the locks are freed.

   Run with:  dune exec examples/malicious_coordinator.exe *)

open Repro_ledger
open Repro_core

let demo ~mode ~label =
  let sys = System.create { (System.default_config ~shards:2 ~committee_size:3) with System.mode } in
  let shards = System.shards sys in
  (* Pick one account per shard. *)
  let key_in shard =
    let rec find i =
      let k = Printf.sprintf "acct%d" i in
      if Tx.shard_of_key ~shards k = shard then k else find (i + 1)
    in
    find 0
  in
  let payer = key_in 0 and payee = key_in 1 in
  Executor.set_balance (System.shard_state sys 0) payer 100;
  let tx =
    Tx.make ~txid:1
      [ Tx.Debit { account = payer; amount = 30 }; Tx.Credit { account = payee; amount = 30 } ]
  in
  Printf.printf "--- %s ---\n" label;
  Printf.printf "malicious payee coordinates a payment from %s, then goes silent...\n" payer;
  System.submit sys ~malicious_client:true tx;
  System.run sys ~until:60.0;
  let locks = System.stuck_locks sys in
  Printf.printf "after 60 s: %d lock tuple(s) outstanding -> %s\n" locks
    (if locks = 0 then "the transaction terminated; funds usable"
     else "the payer's funds are locked FOREVER");
  (* Try to use the payer's account afterwards. *)
  let outcome = ref None in
  System.submit sys
    ~on_done:(fun o -> outcome := Some o)
    (Tx.make ~txid:2
       [ Tx.Debit { account = payer; amount = 10 }; Tx.Credit { account = payee; amount = 10 } ]);
  System.run sys ~until:120.0;
  Printf.printf "a later honest payment from the same account: %s\n\n"
    (match !outcome with
    | Some System.Committed -> "COMMITTED"
    | Some System.Aborted -> "ABORTED (blocked by the dangling lock)"
    | None -> "never finished")

let () =
  demo ~mode:System.Client_driven ~label:"OmniLedger-style client-driven coordination";
  demo ~mode:System.With_reference ~label:"This paper: BFT reference committee as coordinator"
