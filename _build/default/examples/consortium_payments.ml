(* The paper's running example (Section 3.1): a consortium of financial
   institutions running a shared ledger for cross-border payments.

   400 institutions, 100 of which actively collude (s = 25%).  The
   committee-size calculator shows why the TEE-assisted consensus makes
   the deployment practical, and a SmallBank-style payment workload runs
   on the resulting sharded ledger.

   Run with:  dune exec examples/consortium_payments.exe *)

open Repro_util
open Repro_shard
open Repro_core

let () =
  let members = 400 and byzantine_fraction = 0.25 in
  Printf.printf "consortium: %d institutions, %.0f%% colluding\n" members
    (100.0 *. byzantine_fraction);

  (* How large must each committee be so that no committee is ever
     compromised (Eq. 1)?  PBFT needs huge committees; AHL+ does not. *)
  let pbft =
    Sizing.min_committee_size ~total:members ~fraction:byzantine_fraction
      ~rule:Sizing.Pbft_third ~security_bits:20
  in
  let ahl =
    Sizing.min_committee_size ~total:members ~fraction:byzantine_fraction ~rule:Sizing.Ahl_half
      ~security_bits:20
  in
  Printf.printf "safe committee size (2^-20): PBFT %d vs AHL+ %d\n" pbft ahl;
  Printf.printf "  -> with PBFT the whole consortium fits in %d committee(s); AHL+ allows %d\n"
    (max 1 (members / pbft)) (members / ahl);

  (* The consortium agrees on an epoch seed with the SGX randomness
     beacon, then derives everyone's committee assignment from it. *)
  let topology = Repro_sim.Topology.gcp 8 in
  let delta = Randomness.measured_delta ~topology ~n:members in
  let beacon =
    Randomness.run ~n:members ~topology ~delta ~l_bits:(Randomness.paper_l_bits ~n:members) ()
  in
  Printf.printf "epoch seed agreed in %.1f s (%d beacon certificates, %d round(s))\n"
    beacon.Randomness.elapsed beacon.Randomness.certificates beacon.Randomness.rounds;
  let assignment =
    Assignment.derive ~seed:beacon.Randomness.rnd ~epoch:1 ~nodes:members
      ~committees:(members / ahl)
  in
  Printf.printf "institution 0 serves in committee %d this epoch\n"
    (Assignment.committee_of assignment 0);

  (* Run the payment workload on a (scaled-down) sharded deployment. *)
  let sys =
    System.create
      { (System.default_config ~shards:4 ~committee_size:5) with System.seed = 42L }
  in
  let wl = Workload.create Workload.Smallbank ~keyspace:2000 ~theta:0.5 ~rng:(Rng.create 7L) in
  Workload.setup wl sys ~initial_balance:10_000;
  Workload.start_closed_loop wl sys ~clients:16 ~outstanding:16;
  System.run sys ~until:30.0;
  Printf.printf "payments: %d committed, %d aborted (%.1f%% aborts), %.0f tx/s\n"
    (System.committed sys) (System.aborted sys)
    (100.0 *. System.abort_rate sys)
    (System.throughput sys ~warmup:5.0);
  Printf.printf "cross-border (cross-shard) fraction: %.0f%%\n"
    (100.0 *. Workload.cross_shard_fraction_seen wl);
  Printf.printf "reference committee load: %.0f%% CPU\n"
    (100.0 *. System.reference_busy_fraction sys)
