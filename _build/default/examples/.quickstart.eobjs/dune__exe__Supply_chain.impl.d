examples/supply_chain.ml: Array Executor List Option Printf Repro_core Repro_ledger Repro_sim Repro_util Rng State System Tx
