examples/auditor.ml: Block Executor List Printf Repro_crypto Repro_ledger Sha256 State String Tx
