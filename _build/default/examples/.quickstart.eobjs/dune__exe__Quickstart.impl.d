examples/quickstart.ml: Block Contract Executor List Printf Repro_core Repro_ledger String System Tx
