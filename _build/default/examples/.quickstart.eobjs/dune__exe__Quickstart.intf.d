examples/quickstart.mli:
