examples/malicious_coordinator.ml: Executor Printf Repro_core Repro_ledger System Tx
