examples/auditor.mli:
