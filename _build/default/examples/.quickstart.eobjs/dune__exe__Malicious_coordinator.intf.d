examples/malicious_coordinator.mli:
