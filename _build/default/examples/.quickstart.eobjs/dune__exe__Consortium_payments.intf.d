examples/consortium_payments.mli:
