examples/consortium_payments.ml: Assignment Printf Randomness Repro_core Repro_shard Repro_sim Repro_util Rng Sizing System Workload
